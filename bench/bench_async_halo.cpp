// Split-phase halo exchange ablation (E11): how much of a Castro hydro
// RK-stage does interior/boundary overlap recover? The paper's GPU port
// leaves the halo exchange as the step's only blocking phase; posting it
// with FillBoundary_nowait and sweeping every box interior while the
// messages are in flight hides the network time behind compute that was
// going to run anyway. Only the pack/unpack copies and the thin boundary
// shells remain on the critical path.
//
// Methodology (measured compute / modeled network, as in DESIGN.md):
// the stage's kernels run for real under the SimGpu backend and are
// priced by the DeviceModel (V100 params); the exchange's messages are
// recorded by a CommLedger and priced by the Summit-like NetworkModel as
// one bulk-synchronous phase. The device clock times the *whole domain's*
// kernels on one modeled GPU, while phaseTime is already a max over
// ranks, so kernel/copy times are scaled to the busiest rank's box share
// before they are combined (the boxes are identical, so a rank's compute
// is proportional to its box count). Per-rank step time:
//
//   fused : T = (t_copies + t_kernels)*f + T_net          (exchange blocks)
//   split : T = (t_pack + t_unpack + t_shell)*f + max(T_net, t_interior*f)
//
// with f = max boxes on any rank / total boxes.
//
// Output: one row per decomposition, with the modeled step-time
// reduction. Small boxes pay double copy launch latency (pack+unpack vs
// the fused path's single delivery copy) and have thick shells relative
// to their interiors — thin-slab launches also sit low on the device
// model's latency-hiding ramp — so the win peaks where a rank's interior
// compute roughly covers the network phase, the same box-size pressure
// as Figure 1.

#include "bench_util.hpp"
#include "castro/hydro.hpp"
#include "comm/halo_handle.hpp"
#include "comm/ledger.hpp"
#include "mesh/copier_cache.hpp"
#include "mesh/multifab.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

using namespace exa;
using namespace exa::castro;

namespace {

// A periodic Sedov-like blast on ncell^3 chopped into max_grid^3 boxes:
// dense enough that every kernel does real work, periodic so the stage
// is pure exchange + hydro (no physical-BC kernels in the timing).
struct Stage {
    Geometry geom;
    std::unique_ptr<MultiFab> state, dudt;
    const ReactionNetwork& net;
    Eos eos;

    Stage(int ncell, int max_grid, int nranks, const ReactionNetwork& n)
        : net(n), eos(GammaLawEos{1.4}) {
        Box dom({0, 0, 0}, {ncell - 1, ncell - 1, ncell - 1});
        geom = Geometry(dom, {0, 0, 0}, {1, 1, 1}, IntVect{1, 1, 1});
        BoxArray ba(dom);
        ba.maxSize(max_grid);
        DistributionMapping dm(ba, nranks, DistributionMapping::Strategy::Sfc);
        const StateLayout layout(net.nspec());
        state = std::make_unique<MultiFab>(ba, dm, layout.ncomp(), 4);
        dudt = std::make_unique<MultiFab>(ba, dm, layout.ncomp(), 0);
        state->setVal(0.0);
        const Real cx = 0.5, cy = 0.5, cz = 0.5;
        for (std::size_t b = 0; b < state->size(); ++b) {
            auto u = state->array(static_cast<int>(b));
            const Box& vb = state->box(static_cast<int>(b));
            for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
                for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                    for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                        const Real x = geom.cellCenter(0, i) - cx;
                        const Real y = geom.cellCenter(1, j) - cy;
                        const Real z = geom.cellCenter(2, k) - cz;
                        const Real r2 = x * x + y * y + z * z;
                        const Real rho = 1.0;
                        const Real p = 1.0e-5 + std::exp(-r2 / 0.01);
                        u(i, j, k, StateLayout::URHO) = rho;
                        u(i, j, k, StateLayout::UEDEN) = p / 0.4;
                        u(i, j, k, StateLayout::UTEMP) = 1.0;
                        u(i, j, k, StateLayout::UFS) = rho;
                    }
        }
    }
};

struct Row {
    double t_sync, t_async, t_net, t_interior, overlap_hidden;
};

// Fraction of the domain's kernel time charged to the busiest rank: the
// boxes are all max_grid^3, so a rank's compute share is its box count.
double busiestRankShare(const MultiFab& mf) {
    const auto& ranks = mf.distributionMap().ranks();
    std::vector<int> count;
    for (int r : ranks) {
        if (r >= static_cast<int>(count.size())) count.resize(r + 1, 0);
        ++count[r];
    }
    const int mx = *std::max_element(count.begin(), count.end());
    return static_cast<double>(mx) / static_cast<double>(ranks.size());
}

Row runCase(Stage& st, const RankLayout& layout, const NetworkModel& netmod) {
    DeviceModel dev;
    dev.attach();
    CommLedger ledger;
    ledger.attach();
    MultiFab& s = *st.state;
    MultiFab& dudt = *st.dudt;
    const Periodicity per = st.geom.periodicity();
    const int nc = s.nComp();
    const double f = busiestRankShare(s);
    Row row{};

    auto netTime = [&] { return ledger.phaseTime(layout, netmod); };

    // --- fused stage: blocking exchange, then the full sweep.
    {
        comm::ScopedAsyncHalo off(false);
        dev.reset();
        ledger.reset();
        s.FillBoundary(0, nc, per);
        const double t_copies = dev.elapsedSeconds();
        const double t_net = netTime();
        dev.reset();
        molRhs(s, dudt, st.geom, st.net, st.eos);
        row.t_sync = (t_copies + dev.elapsedSeconds()) * f + t_net;
    }

    // --- split stage: post, interior, finish, shell.
    {
        comm::ScopedAsyncHalo on(true);
        ledger.reset();
        dev.reset();
        comm::HaloHandle halo = s.FillBoundary_nowait(0, nc, per);
        const double t_pack = dev.elapsedSeconds();
        const auto part = CopierCache::instance().interiorPartition(
            s.boxArray(), stencilWidth(Reconstruction::PLM));
        dev.reset();
        {
            StreamScope streams;
            for (std::size_t fb = 0; fb < s.size(); ++fb) {
                if (!part->fabs[fb].interior.ok()) continue;
                streams.useFab(fb);
                molRhsRegion(s, dudt, static_cast<int>(fb), part->fabs[fb].interior,
                             st.geom, st.net, st.eos);
            }
        }
        const double t_interior = dev.elapsedSeconds() * f;
        dev.reset();
        halo.finish();
        const double t_unpack = dev.elapsedSeconds();
        const double t_net = netTime();
        dev.reset();
        {
            StreamScope streams;
            for (std::size_t fb = 0; fb < s.size(); ++fb) {
                streams.useFab(fb);
                for (const Box& sb : part->fabs[fb].shell) {
                    molRhsRegion(s, dudt, static_cast<int>(fb), sb, st.geom, st.net,
                                 st.eos);
                }
            }
        }
        const double t_shell = dev.elapsedSeconds();
        row.t_async = (t_pack + t_unpack + t_shell) * f + std::max(t_net, t_interior);
        row.t_net = t_net;
        row.t_interior = t_interior;
        row.overlap_hidden = std::min(t_net, t_interior);
    }
    ledger.detach();
    dev.detach();
    return row;
}

} // namespace

int main() {
    benchutil::printHeader(
        "Ablation: split-phase halo exchange (interior/boundary overlap)");

    ScopedBackend backend(Backend::SimGpu);
    auto net = makeIgnitionSimple();
    const NetworkModel netmod; // Summit-like fabric (src/comm/network.hpp)

    std::printf("\nCastro RK-stage (PLM, stencil 2), fully periodic, modeled"
                " V100 + EDR fabric\n");
    std::printf("\n%-22s %-14s %10s %10s %10s %9s\n", "decomposition", "layout",
                "fused ms", "split ms", "hidden ms", "gain");
    struct Case {
        int ncell, max_grid, nranks, nodes;
    };
    // Box-size sweep at fixed domain + the headline production-like chop.
    const Case cases[] = {
        {64, 16, 8, 8},    // 64 boxes of 16^3: shells dominate, copies x2
        {128, 32, 8, 8},   // 64 boxes of 32^3
        {128, 64, 8, 8},   // 1 box of 64^3 per rank
        {128, 64, 4, 4},   // 2 boxes of 64^3 per rank
        {192, 64, 4, 4},   // 27 boxes of 64^3, ~7 per rank
        {256, 64, 8, 8},   // 64 boxes of 64^3, 8 per rank
        {256, 64, 16, 16}, // 4 boxes of 64^3 per rank
        {256, 128, 8, 8},  // 1 box of 128^3 per rank
    };
    for (const Case& c : cases) {
        Stage st(c.ncell, c.max_grid, c.nranks, net);
        RankLayout layout{c.nodes, c.nranks / c.nodes};
        const Row r = runCase(st, layout, netmod);
        const double gain = 100.0 * (1.0 - r.t_async / r.t_sync);
        char decomp[64], lay[32];
        std::snprintf(decomp, sizeof decomp, "%d^3 / %d^3 boxes", c.ncell,
                      c.max_grid);
        std::snprintf(lay, sizeof lay, "%dr x %dn", c.nranks, c.nodes);
        std::printf("%-22s %-14s %10.2f %10.2f %10.2f %8.1f%%\n", decomp, lay,
                    r.t_sync * 1e3, r.t_async * 1e3, r.overlap_hidden * 1e3, gain);
    }
    std::printf("\nfused  = copies + network + full sweep (exchange blocks)\n");
    std::printf("split  = pack + max(network, interior) + unpack + shell\n");
    std::printf("hidden = min(network, interior): comm time paid behind compute\n");
    return 0;
}
