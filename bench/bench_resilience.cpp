// Experiment E15: what does always-on resilience cost when nothing
// fails, and what does a failure cost when one does?
//
// Part 1 — clean-path overhead: the supervised step loop pays only the
// blocking staging copy of each Daly-scheduled checkpoint (the file I/O
// drains on a background thread). Measured as supervised-vs-plain wall
// time over the same Sedov trajectory at the Daly interval; target < 5%.
// A sync (write-through) supervisor is measured alongside to show what
// the async drain is buying.
//
// Part 2 — recovery cost vs fault rate: seeded rank-failure campaigns at
// increasing fault probability, reporting survival rate, mean replay
// steps per failure, recovery wall time, and checkpoint overhead, with
// the Daly interval the checkpointer converged to.

#include "bench_util.hpp"
#include "castro/sedov.hpp"
#include "core/fault.hpp"
#include "resilience/adapters.hpp"
#include "resilience/campaign.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>

using namespace exa;
using namespace exa::resilience;

namespace {

std::unique_ptr<castro::Castro> blast(const ReactionNetwork& net, int ncell,
                                      int nranks) {
    castro::SedovParams p;
    p.ncell = ncell;
    p.max_grid_size = 16;
    p.nranks = nranks;
    p.guard.enabled = true;
    p.guard.verbose = false;
    return p.build(net);
}

double wallSeconds(const std::function<void()>& f) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int main() {
    benchutil::printHeader(
        "E15: resilience supervisor — clean-path overhead and recovery cost");

    const std::string workdir = "/tmp/exastro_bench_resilience";
    std::filesystem::remove_all(workdir);
    auto net = makeIgnitionSimple();
    const int ncell = 32;
    const int nranks = 8;
    const int nsteps = 24;

    // ---- Part 1: clean-path overhead at the Daly interval ----
    fault::disarmAll();

    auto plain = blast(net, ncell, nranks);
    const double t_plain = wallSeconds([&] {
        for (int i = 0; i < nsteps; ++i) plain->step(plain->estimateDt());
    });

    double t_async = 0.0, t_sync = 0.0;
    int daly_interval = 0;
    std::int64_t ckpts_async = 0;
    for (const bool async : {true, false}) {
        auto c = blast(net, ncell, nranks);
        SupervisorOptions opt;
        opt.checkpoint.dir =
            workdir + (async ? "/clean_async" : "/clean_sync");
        opt.checkpoint.async = async;
        // No armed fault: Daly runs off the measured staging/step costs
        // and the default 1000-step MTBF prior.
        opt.nranks = nranks;
        ResilienceSupervisor sup(makeSupervisedDriver(*c), opt);
        const double t = wallSeconds([&] { sup.runSteps(nsteps); });
        if (async) {
            t_async = t;
            daly_interval = sup.report().daly_interval_steps;
            ckpts_async = sup.report().checkpoints_written;
        } else {
            t_sync = t;
        }
    }

    std::printf("\nclean path: Sedov %d^3, %d ranks, %d steps\n", ncell,
                nranks, nsteps);
    std::printf("  %-28s %10.3f s\n", "plain (no supervisor)", t_plain);
    std::printf("  %-28s %10.3f s  overhead %+5.1f%%  (%lld ckpts, Daly %d)\n",
                "supervised, async drain", t_async,
                100.0 * (t_async / t_plain - 1.0),
                static_cast<long long>(ckpts_async), daly_interval);
    std::printf("  %-28s %10.3f s  overhead %+5.1f%%\n",
                "supervised, write-through", t_sync,
                100.0 * (t_sync / t_plain - 1.0));
    std::printf("  target: async overhead < 5%% at the Daly interval\n");

    // ---- Part 2: recovery cost vs fault rate ----
    std::printf("\nrecovery vs fault rate: %d-seed campaigns, %d steps each\n",
                4, nsteps);
    std::printf("  %-10s %-9s %-9s %-12s %-12s %-10s\n", "p(fail)",
                "survival", "kills", "replay/kill", "recovery[s]", "ckpt[MB]");
    for (const double p : {0.02, 0.05, 0.10, 0.20}) {
        CampaignOptions opt;
        opt.nseeds = 4;
        opt.steps = nsteps;
        opt.base_seed = 0xE15;
        opt.workdir = workdir + "/p" + std::to_string(int(p * 100));
        opt.supervisor.nranks = nranks;
        CampaignFaultSpec kill;
        kill.site = fault::Site::RankFailure;
        kill.spec.probability = p;
        opt.faults = {kill};

        const CampaignReport rep = runCampaign(
            [&](int /*run*/) {
                SupervisedRun r;
                auto owner = std::make_shared<std::unique_ptr<castro::Castro>>(
                    blast(net, ncell, nranks));
                r.owner = owner;
                r.driver = makeSupervisedDriver(**owner);
                return r;
            },
            opt);

        int kills = rep.totalRanksRecovered();
        double recovery_s = 0.0;
        std::int64_t ckpt_bytes = 0;
        for (const CampaignRunResult& r : rep.runs) {
            recovery_s += r.recovery_seconds;
            ckpt_bytes += r.checkpoint_bytes;
        }
        std::printf("  %-10.2f %-9.0f %-9d %-12.1f %-12.3f %-10.1f\n", p,
                    100.0 * rep.survivalRate(), kills,
                    kills > 0 ? static_cast<double>(rep.totalReplaySteps()) /
                                    kills
                              : 0.0,
                    recovery_s,
                    static_cast<double>(ckpt_bytes) / (1024.0 * 1024.0));
    }
    std::printf("\n(survival < 100%% at high rates is expected once fewer "
                "ranks remain\n than concurrent failures require, or a "
                "failure lands before the first\n committed checkpoint.)\n");

    std::filesystem::remove_all(workdir);
    return 0;
}
