// Experiment E3 (Section IV text): single-node/single-GPU throughput
// table. Reported quantities:
//   * Castro pure hydro, per V100, optimal conditions: ~25 zones/usec;
//   * Castro pure hydro, GPU node (6 x V100): ~130 zones/usec;
//   * a modern CPU server node: O(1) zones/usec on the same test;
//   * MAESTROeX reacting bubble: GPU node ~11 zones/usec, ~20x CPU node;
//   * literature context: Cholla 7 z/us (K20X), GAMER 55 z/us (P100),
//     K-Athena 100 z/us (V100) — different algorithms, not comparable 1:1.
//
// The CPU rows are *measured* on this host (serial backend) and scaled to
// a dual-socket server by the documented core count x efficiency factor;
// the GPU rows come from the measured kernel mix priced by the V100
// model.

#include "bench_util.hpp"
#include "castro/sedov.hpp"
#include "core/timer.hpp"
#include "maestro/maestro.hpp"

#include <cstdio>

using namespace exa;

namespace {

// Measured host throughput of the real Sedov solver (zones/usec/core).
double measureCpuSedov() {
    auto net = makeIgnitionSimple();
    castro::SedovParams sp;
    sp.ncell = 32;
    sp.max_grid_size = 32;
    auto c = sp.build(net);
    ScopedBackend sb(Backend::Serial);
    c->step(c->estimateDt()); // warm up
    WallTimer t;
    const int nsteps = 3;
    std::int64_t zones = 0;
    for (int s = 0; s < nsteps; ++s) {
        c->step(c->estimateDt());
        zones += 32LL * 32 * 32;
    }
    return zones / (t.seconds() * 1.0e6);
}

double measureCpuBubble() {
    auto net = makeIgnitionSimple();
    maestro::BubbleParams bp;
    bp.ncell = 16;
    bp.max_grid_size = 16;
    bp.T_bubble = 9.0e8;
    bp.bubble_radius_frac = 0.22;
    auto m = bp.build(net);
    ScopedBackend sb(Backend::Serial);
    WallTimer t;
    const int nsteps = 2;
    std::int64_t zones = 0;
    for (int s = 0; s < nsteps; ++s) {
        m->step(std::min(m->estimateDt(), 1.0e-4));
        zones += 16LL * 16 * 16;
    }
    return zones / (t.seconds() * 1.0e6);
}

} // namespace

int main() {
    benchutil::printHeader("Section IV throughput table (zones/usec)");

    // GPU side: measured Sedov kernel mix -> V100 model.
    auto net = makeIgnitionSimple();
    castro::SedovParams sp;
    sp.ncell = 32;
    sp.max_grid_size = 16;
    auto c = sp.build(net);
    ScopedBackend sb(Backend::SimGpu);
    DeviceModel dev;
    dev.attach();
    const int nsteps = 5;
    for (int s = 0; s < nsteps; ++s) c->step(c->estimateDt());
    dev.detach();
    auto mix = benchutil::kernelMix(dev, static_cast<int>(c->state().size()), nsteps,
                                    16LL * 16 * 16);
    StepModel step;
    step.kernels = mix;
    step.halo_ncomp = castro::StateLayout(net.nspec()).ncomp();

    WeakScalingModel model(MachineParams::summit());
    // Optimal single-GPU conditions: one large box saturating the device.
    const double gpu_optimal = model.singleGpuZonesPerUsec(128, 128, step);
    const double gpu_node = model.run(1, 256, 64, step).zones_per_usec;

    // The host runs the mini PLM + analytic-EOS kernels, which do roughly
    // an order of magnitude less work per zone than production Castro's
    // PPM + Helmholtz (the same richness gap the GPU-side KernelInfo
    // constants encode; see src/castro/hydro.cpp). The derated rows apply
    // that documented factor so CPU and GPU rows describe the same
    // (production) algorithm.
    const double algorithm_richness = 9.0;
    const double cpu_core_sedov = measureCpuSedov();
    const CpuNodeParams cpu = MachineParams::summit().cpu;
    const double cpu_node_sedov =
        cpu_core_sedov * cpu.parallelSpeedup() / algorithm_richness;

    const double cpu_core_bubble = measureCpuBubble();
    const double cpu_node_bubble =
        cpu_core_bubble * cpu.parallelSpeedup() / algorithm_richness;
    const double gpu_node_bubble = 20.0 * cpu_node_bubble; // paper's factor

    std::printf("\n  %-46s %10s %10s\n", "configuration", "ours", "paper");
    benchutil::printRow("Castro Sedov, single V100 (optimal box)", gpu_optimal, 25.0,
                        "zones/usec");
    benchutil::printRow("Castro Sedov, GPU node (6 x V100)", gpu_node, 130.0,
                        "zones/usec");
    benchutil::printRow("Castro Sedov, CPU node (derated, see above)",
                        cpu_node_sedov, 1.0, "zones/usec (O(1) expected)");
    benchutil::printRow("GPU-node / CPU-node ratio (Sedov)",
                        gpu_node / cpu_node_sedov, 100.0, "x (order 100)");
    benchutil::printRow("Bubble, CPU node (derated)", cpu_node_bubble, 0.55,
                        "zones/usec");
    benchutil::printRow("Bubble, GPU node at paper's 20x CPU factor",
                        gpu_node_bubble, 11.0, "zones/usec");

    std::printf("\n  Literature context (different algorithms, not directly\n"
                "  comparable): Cholla 7 z/us (K20X), GAMER 55 z/us (P100),\n"
                "  K-Athena 100 z/us (V100).\n");
    std::printf("\n  Host core measured: Sedov %.2f z/us/core, bubble %.3f "
                "z/us/core\n",
                cpu_core_sedov, cpu_core_bubble);
    return 0;
}
