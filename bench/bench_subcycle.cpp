// E13 — subcycled AMR time stepping: coarse-work reduction and
// round-off conservation through the flux registers.
//
// Castro's production configuration advances each AMR level with its own
// CFL-limited timestep: level lev takes ref_ratio^lev substeps per
// coarse step, so the coarse levels do ref_ratio^lev fewer advances than
// the finest. Without subcycling every level must march at the finest
// level's dt and the coarse zones burn r^lev times the updates for the
// same physical time. This bench runs the same 3-level Sedov-like blast
// (periodic domain: closed books) both ways to the same end time and
// reports:
//
//   * zone updates spent on the coarse levels (lev < finest), subcycled
//     vs. lockstep — target: >= 2x reduction (r = 2, three levels:
//     asymptotically 4x for level 0, diluted by the fine-level work the
//     two runs share);
//   * per-level advance counts, showing the ref_ratio^lev cadence;
//   * mass and energy conservation at sync points for both modes — the
//     FluxRegister repays the coarse/fine flux mismatch, so both hold to
//     round-off despite the coarse level seeing r x fewer, larger steps.

#include "bench_util.hpp"
#include "castro/castro_amr.hpp"
#include "core/parallel_for.hpp"

#include <cmath>
#include <cstdio>
#include <memory>

using namespace exa;
using namespace exa::castro;

namespace {

struct Blast {
    std::unique_ptr<CastroAmr> amr;
    ReactionNetwork net = makeIgnitionSimple();
};

Blast makeBlast(int max_level, int ncell) {
    Blast b;
    Box dom({0, 0, 0}, {ncell - 1, ncell - 1, ncell - 1});
    Geometry geom(dom, {0, 0, 0}, {1, 1, 1}, IntVect{1, 1, 1});
    AmrInfo info;
    info.max_level = max_level;
    info.ref_ratio = 2;
    info.max_grid_size = 16;
    info.blocking_factor = 4;
    info.n_error_buf = 1;
    info.nranks = 4;

    CastroOptions opt;
    opt.bc = DomainBC::allPeriodic();
    opt.cfl = 0.3;

    const Real r_init = 2.0 / ncell;
    const Real e_in = 1.0 / ((4.0 / 3.0) * constants::pi * r_init * r_init * r_init);
    Castro::InitFn init = [=](Real x, Real y, Real z) {
        Castro::InitialZone zn;
        zn.rho = 1.0;
        const Real r = std::sqrt((x - 0.5) * (x - 0.5) + (y - 0.5) * (y - 0.5) +
                                 (z - 0.5) * (z - 0.5));
        zn.p = r <= r_init ? 0.4 * e_in : 1.0e-5;
        zn.X = {1.0, 0.0};
        return zn;
    };
    CastroAmr::TagFn tag = [](int /*lev*/, const Geometry&, const MultiFab& s,
                              MultiFab& tags) {
        const Real thresh = 1.0e-8;
        for (std::size_t f = 0; f < tags.size(); ++f) {
            auto t = tags.array(static_cast<int>(f));
            auto u = s.const_array(static_cast<int>(f));
            ParallelFor(tags.box(static_cast<int>(f)), [=](int i, int j, int k) {
                if (u(i, j, k, StateLayout::UTEMP) > thresh) t(i, j, k) = 1.0;
            });
        }
    };

    Eos eos{GammaLawEos{1.4}};
    b.amr = std::make_unique<CastroAmr>(geom, info, b.net, eos, opt,
                                        std::move(init), std::move(tag));
    b.amr->init();
    return b;
}

struct RunResult {
    std::int64_t coarse_updates = 0; // zone updates on levels < finest
    std::int64_t fine_updates = 0;   // zone updates on the finest level
    std::vector<std::int64_t> advances;
    double mass_drift = 0.0;
    double energy_drift = 0.0;
    int steps = 0;
};

RunResult runTo(CastroAmr& amr, Real t_end) {
    RunResult r;
    r.advances.assign(static_cast<std::size_t>(amr.finestLevel()) + 1, 0);
    const Real m0 = amr.totalMass();
    const Real e0 = amr.totalEnergy();
    std::vector<std::int64_t> last(r.advances.size(), 0);
    while (amr.time() < t_end * (1.0 - 1e-12)) {
        amr.step(std::min(amr.estimateDt(), t_end - amr.time()));
        ++r.steps;
        for (int lev = 0; lev <= amr.finestLevel(); ++lev) {
            const auto l = static_cast<std::size_t>(lev);
            const std::int64_t adv = amr.advanceCount(lev) - last[l];
            last[l] = amr.advanceCount(lev);
            const std::int64_t upd = adv * amr.numZones(lev);
            if (lev < amr.finestLevel()) r.coarse_updates += upd;
            else r.fine_updates += upd;
            r.advances[l] += adv;
        }
        r.mass_drift =
            std::max(r.mass_drift, std::abs(amr.totalMass() / m0 - 1.0));
        r.energy_drift =
            std::max(r.energy_drift, std::abs(amr.totalEnergy() / e0 - 1.0));
    }
    return r;
}

} // namespace

int main() {
    benchutil::printHeader(
        "E13: subcycled AMR stepping — coarse-work reduction, conservation");

    const int max_level = 2, ncell = 16;
    auto sub = makeBlast(max_level, ncell);
    auto lock = makeBlast(max_level, ncell);
    lock.amr->subcycle = false;

    // End time ~8 subcycled coarse steps; the lockstep run needs
    // ref_ratio^finest as many hierarchy steps of the finest-limited dt.
    const Real t_end = 8.0 * sub.amr->estimateDt();

    const RunResult rs = runTo(*sub.amr, t_end);
    const RunResult rl = runTo(*lock.amr, t_end);

    std::printf("  3-level blast to t=%.3e: %d subcycled steps, %d lockstep\n",
                t_end, rs.steps, rl.steps);
    for (std::size_t l = 0; l < rs.advances.size(); ++l) {
        std::printf("  level %zu advances: subcycled %lld, lockstep %lld\n", l,
                    static_cast<long long>(rs.advances[l]),
                    static_cast<long long>(rl.advances[l]));
    }

    const double reduction = rs.coarse_updates > 0
                                 ? static_cast<double>(rl.coarse_updates) /
                                       static_cast<double>(rs.coarse_updates)
                                 : 0.0;
    benchutil::printRow("coarse-level zone-update reduction", reduction, 2.0,
                        "x (target >=)");
    benchutil::printRow("subcycled |dM/M| at sync points", rs.mass_drift, 1e-12,
                        "(target <=)");
    benchutil::printRow("subcycled |dE/E| at sync points", rs.energy_drift, 1e-12,
                        "(target <=)");
    benchutil::printRow("lockstep  |dM/M| at sync points", rl.mass_drift, 1e-12,
                        "(target <=)");

    const bool pass = reduction >= 2.0 && rs.mass_drift <= 1e-12 &&
                      rs.energy_drift <= 1e-12 && rl.mass_drift <= 1e-12;
    std::printf("\n  %s\n", pass ? "PASS" : "FAIL");
    return pass ? 0 : 1;
}
