#include "core/array4.hpp"

#include <gtest/gtest.h>

#include <vector>

using namespace exa;

TEST(Array4, IndexingMatchesFortranOrder) {
    Box b({2, 3, 4}, {5, 7, 9});
    const int ncomp = 3;
    std::vector<double> data(b.numPts() * ncomp, 0.0);
    Array4<double> a(data.data(), b, ncomp);

    // Fill via the view, check the flat layout: i fastest, then j, k, n.
    int counter = 0;
    for (int n = 0; n < ncomp; ++n)
        for (int k = b.smallEnd(2); k <= b.bigEnd(2); ++k)
            for (int j = b.smallEnd(1); j <= b.bigEnd(1); ++j)
                for (int i = b.smallEnd(0); i <= b.bigEnd(0); ++i)
                    a(i, j, k, n) = counter++;

    for (size_t idx = 0; idx < data.size(); ++idx) {
        EXPECT_EQ(data[idx], static_cast<double>(idx));
    }
}

TEST(Array4, ContainsAndStrides) {
    Box b({0, 0, 0}, {3, 4, 5});
    std::vector<double> data(b.numPts());
    Array4<double> a(data.data(), b, 1);
    EXPECT_EQ(a.jstride, 4);
    EXPECT_EQ(a.kstride, 20);
    EXPECT_EQ(a.nstride, 120);
    EXPECT_TRUE(a.contains(0, 0, 0));
    EXPECT_TRUE(a.contains(3, 4, 5));
    EXPECT_FALSE(a.contains(4, 0, 0));
    EXPECT_FALSE(a.contains(0, -1, 0));
}

TEST(Array4, ConstConversion) {
    Box b({0, 0, 0}, {1, 1, 1});
    std::vector<double> data(b.numPts(), 7.0);
    Array4<double> a(data.data(), b, 1);
    Array4<const double> ca = a;
    EXPECT_EQ(ca(1, 1, 1), 7.0);
    a(1, 1, 1) = 9.0;
    EXPECT_EQ(ca(1, 1, 1), 9.0);
}

TEST(Array4, ComponentPointer) {
    Box b({0, 0, 0}, {1, 1, 1});
    std::vector<double> data(b.numPts() * 2);
    Array4<double> a(data.data(), b, 2);
    a(0, 0, 0, 1) = 42.0;
    EXPECT_EQ(a.dataPtr(1)[0], 42.0);
    EXPECT_EQ(a.sizePerComp(), 8);
}
