// Self-tests for the Backend::Debug contract checker: a clean kernel must
// pass silently, a seeded racy kernel and a write-colliding kernel must be
// detected and reported by KernelInfo::name, and Debug results must stay
// bit-identical to Serial (including non-idempotent kernels, which the
// snapshot/restore machinery must not double-apply).

#include "core/arena.hpp"
#include "core/array4.hpp"
#include "core/debug.hpp"
#include "core/parallel_for.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

using namespace exa;

namespace {

// Arena-backed scratch: the checker snapshots arena-resident state only,
// so kernels under test must write through an Arena (exactly the
// "device-resident" requirement of a real GPU port).
class ArenaBuffer {
public:
    explicit ArenaBuffer(std::int64_t n)
        : m_n(n), m_p(static_cast<Real*>(The_Arena()->allocate(sizeof(Real) * n))) {
        std::fill(m_p, m_p + n, 0.0);
    }
    ~ArenaBuffer() { The_Arena()->deallocate(m_p); }
    Real* data() { return m_p; }

private:
    std::int64_t m_n;
    Real* m_p;
};

bool anyViolationFrom(const char* source, const char* kind) {
    for (const auto& v : debug::violations()) {
        if (v.source == source && v.kind == kind) return true;
    }
    return false;
}

} // namespace

TEST(DebugBackend, CleanKernelPassesSilently) {
    debug::ScopedViolationTrap trap;
    debug::clearViolations();
    debug::resetCheckCounts();
    ScopedBackend sb(Backend::Debug);

    Box b({0, 0, 0}, {7, 7, 7});
    ArenaBuffer buf(b.numPts());
    Array4<Real> a(buf.data(), b, 1);
    ParallelFor(KernelInfo{"clean_fill", 10.0, 8.0, 32, 1.0}, b,
                [=](int i, int j, int k) { a(i, j, k) = i + 10.0 * j + 100.0 * k; });

    EXPECT_EQ(debug::violationCount(), 0u);
    EXPECT_DOUBLE_EQ(a(3, 2, 1), 3 + 20.0 + 100.0); // forward result retained
}

TEST(DebugBackend, RacyKernelIsFlaggedByName) {
    debug::ScopedViolationTrap trap;
    debug::clearViolations();
    debug::resetCheckCounts();
    ScopedBackend sb(Backend::Debug);

    Box b({0, 0, 0}, {15, 3, 3});
    ArenaBuffer buf(b.numPts());
    Array4<Real> a(buf.data(), b, 1);
    // Deliberately racy: every zone (except the first in x) reads the
    // value its left neighbor writes in the same launch. Serial forward
    // order builds a prefix chain; any other order yields different data.
    ParallelFor(KernelInfo{"racy_stencil", 10.0, 16.0, 32, 1.0}, b,
                [=](int i, int j, int k) {
                    a(i, j, k) = (i > 0) ? a(i - 1, j, k) + 1.0 : 1.0;
                });

    EXPECT_GT(debug::violationCount(), 0u);
    EXPECT_TRUE(anyViolationFrom("racy_stencil", "order-dependence"));
    // The launch still completes with the Serial (forward-order) answer.
    EXPECT_DOUBLE_EQ(a(15, 0, 0), 16.0);
    debug::clearViolations();
}

TEST(DebugBackend, WriteCollisionIsFlaggedEvenWhenOrderIndependent) {
    debug::ScopedViolationTrap trap;
    debug::clearViolations();
    debug::resetCheckCounts();
    ScopedBackend sb(Backend::Debug);

    Box b({0, 0, 0}, {3, 3, 3});
    ArenaBuffer buf(b.numPts());
    Array4<Real> a(buf.data(), b, 1);
    // Every zone accumulates into one shared cell. Small exact-integer
    // adds commute bitwise, so forward/reversed/shuffled orders agree and
    // the order check stays silent — only the write-footprint pass can see
    // that 64 zones all touch the same address.
    ParallelFor(KernelInfo{"shared_accumulator", 5.0, 8.0, 32, 1.0}, b,
                [=](int, int, int) { a(0, 0, 0) += 1.0; });

    EXPECT_TRUE(anyViolationFrom("shared_accumulator", "write-collision"));
    EXPECT_FALSE(anyViolationFrom("shared_accumulator", "order-dependence"));
    debug::clearViolations();
}

TEST(DebugBackend, BitIdenticalToSerialIncludingNonIdempotentKernels) {
    debug::ScopedViolationTrap trap;
    debug::resetCheckCounts();

    Box b({0, 0, 0}, {7, 7, 7});
    auto run = [&](Backend be) {
        ScopedBackend sb(be);
        ArenaBuffer buf(b.numPts());
        Array4<Real> a(buf.data(), b, 1);
        ParallelFor(KernelInfo{"seed_fill", 10.0, 8.0, 32, 1.0}, b,
                    [=](int i, int j, int k) { a(i, j, k) = std::sin(0.1 * i * j + k); });
        // Non-idempotent: if Debug's replay passes leaked into the final
        // state, the increment would be applied 2-4 times.
        ParallelFor(KernelInfo{"increment", 5.0, 16.0, 32, 1.0}, b,
                    [=](int i, int j, int k) { a(i, j, k) += 1.5; });
        return std::vector<Real>(buf.data(), buf.data() + b.numPts());
    };

    const auto serial = run(Backend::Serial);
    const auto dbg = run(Backend::Debug);
    ASSERT_EQ(serial.size(), dbg.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(std::memcmp(&serial[i], &dbg[i], sizeof(Real)), 0) << "zone " << i;
    }
    EXPECT_EQ(debug::violationCount(), 0u);
}

TEST(DebugBackend, ComponentVariantIsCheckedPerComponent) {
    debug::ScopedViolationTrap trap;
    debug::clearViolations();
    debug::resetCheckCounts();
    ScopedBackend sb(Backend::Debug);

    Box b({0, 0, 0}, {3, 3, 3});
    const int nc = 3;
    ArenaBuffer buf(b.numPts() * nc);
    Array4<Real> a(buf.data(), b, nc);
    // Writes are keyed by (i,j,k) but not by n: components collide on
    // component 0 of their zone. (i,j,k,n) is the contract key, so this
    // must be flagged.
    ParallelFor(KernelInfo{"component_collider", 5.0, 8.0, 32, 1.0}, b, nc,
                [=](int i, int j, int k, int) { a(i, j, k, 0) += 1.0; });

    EXPECT_TRUE(anyViolationFrom("component_collider", "write-collision"));
    debug::clearViolations();
}

TEST(DebugBackend, ChecksAreRateLimitedPerKernelName) {
    debug::ScopedViolationTrap trap;
    debug::clearViolations();
    debug::resetCheckCounts();
    ScopedBackend sb(Backend::Debug);

    const int cap = debug::limits().checks_per_kernel;
    ASSERT_GT(cap, 0);
    Box b({0, 0, 0}, {7, 1, 1});
    ArenaBuffer buf(b.numPts());
    Array4<Real> a(buf.data(), b, 1);
    auto racy_launch = [&] {
        ParallelFor(KernelInfo{"rate_limited_racy", 5.0, 8.0, 32, 1.0}, b,
                    [=](int i, int j, int k) {
                        a(i, j, k) = (i > 0) ? a(i - 1, j, k) + 1.0 : 1.0;
                    });
    };
    for (int r = 0; r < cap; ++r) racy_launch();
    const auto after_cap = debug::violationCount();
    EXPECT_GT(after_cap, 0u);
    for (int r = 0; r < 3; ++r) racy_launch(); // quota exhausted: unchecked
    EXPECT_EQ(debug::violationCount(), after_cap);
    debug::clearViolations();
}

TEST(DebugBackend, OneDimensionalLaunchRunsExactlyOnce) {
    ScopedBackend sb(Backend::Debug);
    std::vector<int> v(64, 0);
    int* p = v.data();
    // 1-D launches are documented as unchecked single-pass under Debug;
    // a replay would double these host-side increments.
    ParallelFor(static_cast<std::int64_t>(v.size()), [=](std::int64_t i) { p[i] += 1; });
    for (int x : v) EXPECT_EQ(x, 1);
}

TEST(DebugBackend, BackendNamesRoundTrip) {
    EXPECT_EQ(backendFromName("debug"), Backend::Debug);
    EXPECT_EQ(backendFromName("serial"), Backend::Serial);
    EXPECT_EQ(backendFromName("openmp"), Backend::OpenMP);
    EXPECT_EQ(backendFromName("simgpu"), Backend::SimGpu);
    EXPECT_EQ(backendFromName(nullptr), Backend::Serial);
    EXPECT_EQ(backendFromName("nonsense"), Backend::Serial);
    EXPECT_STREQ(backendName(Backend::Debug), "debug");
}

TEST(ParallelReduce, EmptyBoxIdentities) {
    const Box empty;
    const Real inf = std::numeric_limits<Real>::infinity();
    EXPECT_EQ(ParallelReduceMax(empty, [](int, int, int) { return 42.0; }), -inf);
    EXPECT_EQ(ParallelReduceMin(empty, [](int, int, int) { return 42.0; }), inf);
    EXPECT_EQ(ParallelReduceSum(empty, [](int, int, int) { return 42.0; }), 0.0);
    // Folding an empty reduction into a non-empty one is a no-op.
    Box b({0, 0, 0}, {1, 1, 1});
    const Real mx = ParallelReduceMax(b, [](int, int, int) { return -5.0; });
    EXPECT_EQ(std::max(mx, ParallelReduceMax(empty, [](int, int, int) { return 0.0; })),
              -5.0);
}
