// Regression tests for the TimerRegistry data race: concurrent TimerRegion
// scopes from many threads used to corrupt the entry map (std::map is not
// safe for concurrent insertion). With the registry mutex, counts and
// accumulated seconds are exact.

#include "core/timer.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace exa;

TEST(TimerRegistry, AccumulatesSecondsAndCalls) {
    auto& reg = TimerRegistry::instance();
    reg.reset();
    reg.add("hydro", 1.5);
    reg.add("hydro", 2.5);
    reg.add("burn", 0.25);
    EXPECT_DOUBLE_EQ(reg.seconds("hydro"), 4.0);
    EXPECT_EQ(reg.calls("hydro"), 2u);
    EXPECT_EQ(reg.calls("burn"), 1u);
    EXPECT_DOUBLE_EQ(reg.seconds("absent"), 0.0);
    EXPECT_EQ(reg.calls("absent"), 0u);
    reg.reset();
    EXPECT_EQ(reg.calls("hydro"), 0u);
}

TEST(TimerRegistry, ConcurrentAddsAreExact) {
    auto& reg = TimerRegistry::instance();
    reg.reset();
    constexpr int nthreads = 8;
    constexpr int adds_per_thread = 5000;
    std::vector<std::thread> threads;
    threads.reserve(nthreads);
    for (int t = 0; t < nthreads; ++t) {
        threads.emplace_back([t] {
            auto& r = TimerRegistry::instance();
            for (int n = 0; n < adds_per_thread; ++n) {
                r.add("shared", 0.001);
                // Distinct names force concurrent map insertion, the
                // crash-prone path before the mutex.
                r.add("thread_" + std::to_string(t), 0.002);
            }
        });
    }
    for (auto& th : threads) th.join();

    EXPECT_EQ(reg.calls("shared"),
              static_cast<std::uint64_t>(nthreads) * adds_per_thread);
    EXPECT_NEAR(reg.seconds("shared"), nthreads * adds_per_thread * 0.001, 1e-6);
    for (int t = 0; t < nthreads; ++t) {
        EXPECT_EQ(reg.calls("thread_" + std::to_string(t)),
                  static_cast<std::uint64_t>(adds_per_thread));
    }
    reg.reset();
}

TEST(TimerRegistry, ConcurrentRegionsAndReads) {
    auto& reg = TimerRegistry::instance();
    reg.reset();
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([] {
            for (int n = 0; n < 500; ++n) {
                TimerRegion region("region");
                (void)TimerRegistry::instance().seconds("region"); // reader
            }
        });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(reg.calls("region"), 2000u);
    EXPECT_GE(reg.seconds("region"), 0.0);
    reg.reset();
}

TEST(TimerRegistry, ReportMentionsEntries) {
    auto& reg = TimerRegistry::instance();
    reg.reset();
    reg.add("multigrid", 3.0);
    const std::string rep = reg.report();
    EXPECT_NE(rep.find("multigrid"), std::string::npos);
    reg.reset();
}
