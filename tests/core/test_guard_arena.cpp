// Self-tests for the GuardArena canary allocator: buffer overflow and
// underflow writes are caught on free, double frees and foreign frees are
// detected (and never forwarded to the underlying arena), freed memory is
// poisoned, and outstanding blocks produce a leak report.

#include "core/arena.hpp"
#include "core/debug.hpp"

#include <gtest/gtest.h>

#include <cstring>

using namespace exa;

namespace {

bool anyViolation(const char* kind) {
    for (const auto& v : debug::violations()) {
        if (v.kind == kind) return true;
    }
    return false;
}

} // namespace

TEST(GuardArena, CleanLifecycleIsSilent) {
    debug::ScopedViolationTrap trap;
    debug::clearViolations();
    MallocArena under;
    {
        GuardArena g(&under, "test-guard");
        void* p = g.allocate(256);
        std::memset(p, 0x11, 256); // full in-bounds write is fine
        EXPECT_EQ(g.checkAll(), 0u);
        g.deallocate(p);
        auto gs = g.guardStats();
        EXPECT_EQ(gs.canary_overflows, 0u);
        EXPECT_EQ(gs.canary_underflows, 0u);
        EXPECT_EQ(gs.double_frees, 0u);
        EXPECT_EQ(gs.leaked_blocks, 0u);
    }
    EXPECT_EQ(debug::violationCount(), 0u);
    EXPECT_EQ(under.stats().bytes_in_use, 0u); // guard released its padding
}

TEST(GuardArena, OverflowWriteIsCaughtOnFree) {
    debug::ScopedViolationTrap trap;
    debug::clearViolations();
    MallocArena under;
    GuardArena g(&under, "test-guard");
    auto* p = static_cast<unsigned char*>(g.allocate(100));
    p[100] = 0x42; // one byte past the end stomps the footer canary
    g.deallocate(p);
    EXPECT_EQ(g.guardStats().canary_overflows, 1u);
    EXPECT_TRUE(anyViolation("canary-overflow"));
    debug::clearViolations();
}

TEST(GuardArena, UnderflowWriteIsCaughtByCheckAll) {
    debug::ScopedViolationTrap trap;
    debug::clearViolations();
    MallocArena under;
    GuardArena g(&under, "test-guard");
    auto* p = static_cast<unsigned char*>(g.allocate(100));
    p[-1] = 0x42; // stomp the header canary
    EXPECT_GE(g.checkAll(), 1u);
    EXPECT_GE(g.guardStats().canary_underflows, 1u);
    EXPECT_TRUE(anyViolation("canary-underflow"));
    g.deallocate(p);
    debug::clearViolations();
}

TEST(GuardArena, DoubleFreeIsReportedByArenaName) {
    debug::ScopedViolationTrap trap;
    debug::clearViolations();
    MallocArena under;
    GuardArena g(&under, "df-guard");
    void* p = g.allocate(64);
    g.deallocate(p);
    const auto frees_before = under.stats().frees;
    g.deallocate(p); // double free: detected, NOT forwarded
    EXPECT_EQ(g.guardStats().double_frees, 1u);
    EXPECT_EQ(under.stats().frees, frees_before);
    bool named = false;
    for (const auto& v : debug::violations()) {
        if (v.source == "df-guard" && v.kind == "double-free") named = true;
    }
    EXPECT_TRUE(named);
    debug::clearViolations();
}

TEST(GuardArena, ForeignFreeIsReportedNotForwarded) {
    debug::ScopedViolationTrap trap;
    debug::clearViolations();
    MallocArena under;
    GuardArena g(&under, "test-guard");
    int stack_var = 0;
    g.deallocate(&stack_var);
    EXPECT_EQ(g.guardStats().bad_frees, 1u);
    EXPECT_TRUE(anyViolation("bad-free"));
    debug::clearViolations();
}

TEST(GuardArena, FreedMemoryIsPoisoned) {
    debug::ScopedViolationTrap trap;
    // Keep the underlying block alive after the guard frees it so we can
    // legally inspect the poison pattern: free into a caching pool.
    PoolArena pool;
    GuardArena g(&pool, "test-guard");
    auto* p = static_cast<unsigned char*>(g.allocate(128));
    std::memset(p, 0x77, 128);
    g.deallocate(p);
    // The pool caches the block rather than unmapping it; the guard must
    // have poisoned the whole padded region (including the user bytes).
    EXPECT_EQ(p[0], GuardArena::poison_byte);
    EXPECT_EQ(p[127], GuardArena::poison_byte);
}

TEST(GuardArena, ReissuedAddressIsNotAFalseDoubleFree) {
    debug::ScopedViolationTrap trap;
    debug::clearViolations();
    PoolArena pool;
    GuardArena g(&pool, "test-guard");
    void* a = g.allocate(200);
    g.deallocate(a);
    void* b = g.allocate(200); // pool reuse: same underlying block
    g.deallocate(b);           // must NOT count as a double free of `a`
    EXPECT_EQ(g.guardStats().double_frees, 0u);
    EXPECT_EQ(debug::violationCount(), 0u);
}

TEST(GuardArena, LeakReportAtDestruction) {
    debug::ScopedViolationTrap trap;
    MallocArena under;
    void* leaked = nullptr;
    ::testing::internal::CaptureStderr();
    {
        GuardArena g(&under, "leak-guard");
        leaked = g.allocate(1000); // never freed through the guard
    }
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("leak-guard"), std::string::npos);
    EXPECT_NE(err.find("LEAK"), std::string::npos);
    EXPECT_NE(err.find("1000"), std::string::npos);
    // Clean up the underlying padded block so the test itself doesn't leak.
    under.deallocate(static_cast<unsigned char*>(leaked) - GuardArena::canary_bytes);
}

TEST(GuardArena, ZeroByteAllocationIsValid) {
    debug::ScopedViolationTrap trap;
    debug::clearViolations();
    MallocArena under;
    GuardArena g(&under, "test-guard");
    void* p = g.allocate(0);
    ASSERT_NE(p, nullptr);
    g.deallocate(p);
    EXPECT_EQ(debug::violationCount(), 0u);
}

TEST(GuardArena, ForEachLiveReportsUserRegions) {
    MallocArena under;
    GuardArena g(&under, "test-guard");
    void* p = g.allocate(300);
    std::size_t seen = 0;
    void* seen_ptr = nullptr;
    std::size_t seen_bytes = 0;
    g.forEachLive([&](void* q, std::size_t b) {
        ++seen;
        seen_ptr = q;
        seen_bytes = b;
    });
    EXPECT_EQ(seen, 1u);
    EXPECT_EQ(seen_ptr, p);     // user pointer, not the padded base
    EXPECT_EQ(seen_bytes, 300u); // user size, not the padded size
    g.deallocate(p);
}

TEST(GuardArena, TheGuardArenaIsRuntimeSelectable) {
    Arena* saved = The_Arena();
    setTheArena(&theGuardArena());
    EXPECT_EQ(The_Arena(), &theGuardArena());
    void* p = The_Arena()->allocate(64);
    The_Arena()->deallocate(p);
    setTheArena(saved);
    EXPECT_EQ(arenaFromName("guard"), &theGuardArena());
    EXPECT_EQ(arenaFromName("malloc"), &theMallocArena());
    EXPECT_EQ(arenaFromName("pool"), &thePoolArena());
    EXPECT_EQ(arenaFromName(nullptr), &thePoolArena());
}
