#include "core/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

using namespace exa;

namespace {

// Every test leaves the global registry clean.
struct FaultRegistryTest : ::testing::Test {
    void SetUp() override { fault::disarmAll(); }
    void TearDown() override { fault::disarmAll(); }
};

std::vector<int> firingHits(const fault::Spec& spec, int nhits) {
    fault::arm(fault::Site::BurnZoneFailure, spec);
    std::vector<int> fired;
    for (int h = 0; h < nhits; ++h) {
        if (fault::shouldFire(fault::Site::BurnZoneFailure)) fired.push_back(h);
    }
    fault::disarm(fault::Site::BurnZoneFailure);
    return fired;
}

} // namespace

TEST_F(FaultRegistryTest, DisarmedSitesNeverFire) {
    EXPECT_FALSE(fault::anyArmed());
    EXPECT_FALSE(fault::armed(fault::Site::BurnZoneFailure));
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(fault::shouldFire(fault::Site::BurnZoneFailure));
    }
    // Disarmed shouldFire does not even count hits (fast path).
    EXPECT_EQ(fault::stats(fault::Site::BurnZoneFailure).hits, 0);
}

TEST_F(FaultRegistryTest, DefaultSpecFiresExactlyFirstHit) {
    EXPECT_EQ(firingHits(fault::Spec{}, 10), (std::vector<int>{0}));
}

TEST_F(FaultRegistryTest, WindowRuleFiresStartCountStride) {
    fault::Spec spec;
    spec.start = 2;
    spec.count = 5;
    spec.stride = 2;
    // Hits 2..6, every other: 2, 4, 6.
    EXPECT_EQ(firingHits(spec, 20), (std::vector<int>{2, 4, 6}));
}

TEST_F(FaultRegistryTest, UnboundedCountFiresForever) {
    fault::Spec spec;
    spec.start = 3;
    spec.count = 0; // unbounded
    const auto fired = firingHits(spec, 10);
    EXPECT_EQ(fired, (std::vector<int>{3, 4, 5, 6, 7, 8, 9}));
}

TEST_F(FaultRegistryTest, ProbabilityModeIsDeterministicInSeed) {
    fault::Spec spec;
    spec.probability = 0.5;
    spec.seed = 12345;
    const auto a = firingHits(spec, 200);
    const auto b = firingHits(spec, 200);
    EXPECT_EQ(a, b); // same seed -> identical pattern
    EXPECT_GT(a.size(), 50u); // ~100 of 200 at p = 0.5
    EXPECT_LT(a.size(), 150u);

    spec.seed = 54321;
    EXPECT_NE(firingHits(spec, 200), a); // different seed -> different pattern
}

TEST_F(FaultRegistryTest, ArmResetsCountersAndStatsReport) {
    fault::Spec spec;
    spec.count = 2;
    fault::arm(fault::Site::HydroNanFlux, spec);
    for (int i = 0; i < 5; ++i) fault::shouldFire(fault::Site::HydroNanFlux);
    auto st = fault::stats(fault::Site::HydroNanFlux);
    EXPECT_TRUE(st.armed);
    EXPECT_EQ(st.hits, 5);
    EXPECT_EQ(st.fires, 2);

    fault::arm(fault::Site::HydroNanFlux, spec); // re-arm resets
    st = fault::stats(fault::Site::HydroNanFlux);
    EXPECT_EQ(st.hits, 0);
    EXPECT_EQ(st.fires, 0);
}

TEST_F(FaultRegistryTest, ScopedFaultArmsAndDisarms) {
    {
        fault::ScopedFault f(fault::Site::HaloPayloadCorrupt);
        EXPECT_TRUE(fault::armed(fault::Site::HaloPayloadCorrupt));
        EXPECT_TRUE(fault::anyArmed());
    }
    EXPECT_FALSE(fault::armed(fault::Site::HaloPayloadCorrupt));
    EXPECT_FALSE(fault::anyArmed());
}

TEST_F(FaultRegistryTest, SiteNamesRoundTrip) {
    for (int i = 0; i < fault::nsites; ++i) {
        const auto s = static_cast<fault::Site>(i);
        fault::Site back;
        ASSERT_TRUE(fault::siteFromName(fault::siteName(s), back));
        EXPECT_EQ(back, s);
    }
    fault::Site out;
    EXPECT_FALSE(fault::siteFromName("no-such-site", out));
}

TEST_F(FaultRegistryTest, ConfigureFromStringArmsSites) {
    std::string err;
    ASSERT_TRUE(fault::configureFromString(
        "burn-zone-failure:start=40,count=2;halo-payload-corrupt:prob=0.25,seed=7",
        &err))
        << err;
    EXPECT_TRUE(fault::armed(fault::Site::BurnZoneFailure));
    EXPECT_TRUE(fault::armed(fault::Site::HaloPayloadCorrupt));
    auto st = fault::stats(fault::Site::BurnZoneFailure);
    EXPECT_EQ(st.spec.start, 40);
    EXPECT_EQ(st.spec.count, 2);
    auto st2 = fault::stats(fault::Site::HaloPayloadCorrupt);
    EXPECT_DOUBLE_EQ(st2.spec.probability, 0.25);
    EXPECT_EQ(st2.spec.seed, 7u);
}

TEST_F(FaultRegistryTest, ConfigureFromStringRejectsMalformedSpecs) {
    std::string err;
    EXPECT_FALSE(fault::configureFromString("definitely-bad-site:count=1", &err));
    EXPECT_NE(err.find("unknown site"), std::string::npos);
    EXPECT_FALSE(fault::configureFromString("burn-zone-failure:count", &err));
    EXPECT_FALSE(fault::configureFromString("burn-zone-failure:count=xyz", &err));
    EXPECT_FALSE(fault::configureFromString("burn-zone-failure:banana=1", &err));
    // A bare site name (no spec) arms with the default spec.
    EXPECT_TRUE(fault::configureFromString("arena-alloc-failure", &err));
    EXPECT_TRUE(fault::armed(fault::Site::ArenaAllocFailure));
}

TEST_F(FaultRegistryTest, ResilienceSitesHaveNameParity) {
    // The resilience PR added two sites; the enum and the name table must
    // agree (the generic round-trip above covers the mapping, this pins
    // the spellings the EXA_FAULTS docs advertise).
    EXPECT_EQ(fault::nsites, 8);
    EXPECT_STREQ(fault::siteName(fault::Site::RankFailure), "rank-failure");
    EXPECT_STREQ(fault::siteName(fault::Site::CommMessageDrop),
                 "comm-message-drop");
    fault::Site s;
    ASSERT_TRUE(fault::siteFromName("rank-failure", s));
    EXPECT_EQ(s, fault::Site::RankFailure);
    ASSERT_TRUE(fault::siteFromName("comm-message-drop", s));
    EXPECT_EQ(s, fault::Site::CommMessageDrop);
}

TEST_F(FaultRegistryTest, ConfigureFromStringIsAtomic) {
    // A malformed entry anywhere in the string arms *nothing*: a campaign
    // must never run with half its schedule silently dropped.
    std::string err;
    EXPECT_FALSE(fault::configureFromString(
        "rank-failure:start=3;halo-payload-corrupt:prob=1.5", &err));
    EXPECT_FALSE(fault::armed(fault::Site::RankFailure));
    EXPECT_FALSE(fault::anyArmed());
    EXPECT_NE(err.find("prob"), std::string::npos);
}

TEST_F(FaultRegistryTest, ConfigureFromStringRejectsOutOfRangeProbability) {
    std::string err;
    EXPECT_FALSE(fault::configureFromString("rank-failure:prob=1.01", &err));
    EXPECT_NE(err.find("prob"), std::string::npos);
    EXPECT_TRUE(fault::configureFromString("rank-failure:prob=1.0", &err))
        << err;
}

TEST_F(FaultRegistryTest, ConfigureFromStringOrDieExitsOnMalformedSpec) {
    EXPECT_EXIT(fault::configureFromStringOrDie("rank-failure:banana=1"),
                ::testing::ExitedWithCode(2),
                "rejecting malformed fault config");
    // A valid config arms normally (the death test ran in a child).
    fault::configureFromStringOrDie("rank-failure:start=5");
    EXPECT_TRUE(fault::armed(fault::Site::RankFailure));
    EXPECT_EQ(fault::stats(fault::Site::RankFailure).spec.start, 5);
}
