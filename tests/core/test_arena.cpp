#include "core/arena.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

using namespace exa;

TEST(MallocArena, EveryAllocIsSlow) {
    MallocArena arena;
    void* a = arena.allocate(1000);
    void* b = arena.allocate(1000);
    arena.deallocate(a);
    arena.deallocate(b);
    void* c = arena.allocate(1000);
    arena.deallocate(c);
    auto s = arena.stats();
    EXPECT_EQ(s.allocs, 3u);
    EXPECT_EQ(s.frees, 3u);
    EXPECT_EQ(s.slow_allocs, 3u);
    EXPECT_EQ(s.pool_hits, 0u);
    EXPECT_EQ(s.bytes_in_use, 0u);
}

TEST(PoolArena, ReuseAfterFree) {
    PoolArena arena;
    void* a = arena.allocate(1000);
    arena.deallocate(a);
    void* b = arena.allocate(900); // same size class (1024)
    EXPECT_EQ(a, b);               // handle reuse, no new allocation
    arena.deallocate(b);
    auto s = arena.stats();
    EXPECT_EQ(s.allocs, 2u);
    EXPECT_EQ(s.slow_allocs, 1u);
    EXPECT_EQ(s.pool_hits, 1u);
}

TEST(PoolArena, SteadyStateNeverHitsAllocator) {
    // The paper's scenario: a timestep loop allocating/freeing scratch of
    // the same sizes every step. After step one, no slow allocations.
    PoolArena arena;
    const std::vector<std::size_t> sizes = {4096, 16384, 4096, 65536};
    for (int step = 0; step < 100; ++step) {
        std::vector<void*> ptrs;
        for (auto sz : sizes) ptrs.push_back(arena.allocate(sz));
        for (void* p : ptrs) arena.deallocate(p);
    }
    auto s = arena.stats();
    EXPECT_EQ(s.allocs, 400u);
    EXPECT_LE(s.slow_allocs, sizes.size()); // only warm-up misses
    EXPECT_GE(s.pool_hits, 396u);
    EXPECT_EQ(s.bytes_in_use, 0u);
    EXPECT_GT(s.bytes_reserved, 0u); // cache retained
    arena.releaseCached();
    EXPECT_EQ(arena.stats().bytes_reserved, 0u);
}

TEST(PoolArena, DistinctSizeClassesDontAlias) {
    PoolArena arena;
    void* a = arena.allocate(100);
    void* b = arena.allocate(100000);
    EXPECT_NE(a, b);
    std::memset(a, 0xAB, 100);
    std::memset(b, 0xCD, 100000);
    arena.deallocate(a);
    arena.deallocate(b);
}

TEST(PoolArena, HighWaterMarkTracksPeak) {
    PoolArena arena;
    void* a = arena.allocate(1 << 20);
    void* b = arena.allocate(1 << 20);
    auto peak = arena.stats().hwm_bytes;
    arena.deallocate(a);
    arena.deallocate(b);
    EXPECT_GE(peak, 2u << 20);
    EXPECT_EQ(arena.stats().hwm_bytes, peak); // HWM persists
}

TEST(PoolArena, NullFreeIsNoop) {
    PoolArena arena;
    arena.deallocate(nullptr);
    EXPECT_EQ(arena.stats().frees, 0u);
}

TEST(TheArena, DefaultIsPoolAndSwappable) {
    setTheArena(nullptr);
    EXPECT_EQ(The_Arena(), &thePoolArena());
    setTheArena(&theMallocArena());
    EXPECT_EQ(The_Arena(), &theMallocArena());
    setTheArena(&thePoolArena());
    EXPECT_EQ(The_Arena(), &thePoolArena());
}
