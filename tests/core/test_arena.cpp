#include "core/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

using namespace exa;

TEST(MallocArena, EveryAllocIsSlow) {
    MallocArena arena;
    void* a = arena.allocate(1000);
    void* b = arena.allocate(1000);
    arena.deallocate(a);
    arena.deallocate(b);
    void* c = arena.allocate(1000);
    arena.deallocate(c);
    auto s = arena.stats();
    EXPECT_EQ(s.allocs, 3u);
    EXPECT_EQ(s.frees, 3u);
    EXPECT_EQ(s.slow_allocs, 3u);
    EXPECT_EQ(s.pool_hits, 0u);
    EXPECT_EQ(s.bytes_in_use, 0u);
}

TEST(PoolArena, ReuseAfterFree) {
    PoolArena arena;
    void* a = arena.allocate(1000);
    arena.deallocate(a);
    void* b = arena.allocate(900); // same size class (1024)
    EXPECT_EQ(a, b);               // handle reuse, no new allocation
    arena.deallocate(b);
    auto s = arena.stats();
    EXPECT_EQ(s.allocs, 2u);
    EXPECT_EQ(s.slow_allocs, 1u);
    EXPECT_EQ(s.pool_hits, 1u);
}

TEST(PoolArena, SteadyStateNeverHitsAllocator) {
    // The paper's scenario: a timestep loop allocating/freeing scratch of
    // the same sizes every step. After step one, no slow allocations.
    PoolArena arena;
    const std::vector<std::size_t> sizes = {4096, 16384, 4096, 65536};
    for (int step = 0; step < 100; ++step) {
        std::vector<void*> ptrs;
        for (auto sz : sizes) ptrs.push_back(arena.allocate(sz));
        for (void* p : ptrs) arena.deallocate(p);
    }
    auto s = arena.stats();
    EXPECT_EQ(s.allocs, 400u);
    EXPECT_LE(s.slow_allocs, sizes.size()); // only warm-up misses
    EXPECT_GE(s.pool_hits, 396u);
    EXPECT_EQ(s.bytes_in_use, 0u);
    EXPECT_GT(s.bytes_reserved, 0u); // cache retained
    arena.releaseCached();
    EXPECT_EQ(arena.stats().bytes_reserved, 0u);
}

TEST(PoolArena, DistinctSizeClassesDontAlias) {
    PoolArena arena;
    void* a = arena.allocate(100);
    void* b = arena.allocate(100000);
    EXPECT_NE(a, b);
    std::memset(a, 0xAB, 100);
    std::memset(b, 0xCD, 100000);
    arena.deallocate(a);
    arena.deallocate(b);
}

TEST(PoolArena, HighWaterMarkTracksPeak) {
    PoolArena arena;
    void* a = arena.allocate(1 << 20);
    void* b = arena.allocate(1 << 20);
    auto peak = arena.stats().hwm_bytes;
    arena.deallocate(a);
    arena.deallocate(b);
    EXPECT_GE(peak, 2u << 20);
    EXPECT_EQ(arena.stats().hwm_bytes, peak); // HWM persists
}

TEST(PoolArena, NullFreeIsNoop) {
    PoolArena arena;
    arena.deallocate(nullptr);
    EXPECT_EQ(arena.stats().frees, 0u);
}

TEST(MallocArena, ForeignFreeIsRefusedAndCounted) {
    // Regression: a pointer the arena never issued used to be passed
    // straight to std::free (heap corruption) and decrement bytes_in_use
    // below zero (stat corruption, as the counters are unsigned).
    MallocArena arena;
    int stack_var = 0;
    arena.deallocate(&stack_var);
    auto s = arena.stats();
    EXPECT_EQ(s.bad_frees, 1u);
    EXPECT_EQ(s.frees, 0u);
    EXPECT_EQ(s.bytes_in_use, 0u);
}

TEST(MallocArena, DoubleFreeIsRefusedAndCounted) {
    MallocArena arena;
    void* p = arena.allocate(128);
    arena.deallocate(p);
    arena.deallocate(p); // second free must be refused, not forwarded
    auto s = arena.stats();
    EXPECT_EQ(s.frees, 1u);
    EXPECT_EQ(s.bad_frees, 1u);
    EXPECT_EQ(s.bytes_in_use, 0u);
}

TEST(PoolArena, ForeignFreeIsRefusedAndCounted) {
    PoolArena arena;
    int stack_var = 0;
    arena.deallocate(&stack_var);
    auto s = arena.stats();
    EXPECT_EQ(s.bad_frees, 1u);
    EXPECT_EQ(s.frees, 0u);
}

TEST(PoolArena, SizeClassClampsAtTopPowerOfTwo) {
    // Regression: sizes above the top power of two representable in
    // size_t made `cls <<= 1` overflow to zero and loop forever. Such
    // requests now get an exact-size class (direct allocation).
    PoolArena arena;
    constexpr std::size_t top = ~(~std::size_t{0} >> 1);
    EXPECT_EQ(arena.sizeClass(top), top);          // exact power of two: fine
    EXPECT_EQ(arena.sizeClass(top + 1), top + 1);  // above: exact size
    EXPECT_EQ(arena.sizeClass(SIZE_MAX), SIZE_MAX);
    EXPECT_EQ(arena.sizeClass(1000), 1024u);
    EXPECT_EQ(arena.sizeClass(1024), 1024u);
}

TEST(PoolArena, ZeroByteAllocationIsValid) {
    PoolArena arena;
    EXPECT_EQ(arena.sizeClass(0), arena.sizeClass(1)); // min block class
    void* p = arena.allocate(0);
    ASSERT_NE(p, nullptr);
    void* q = arena.allocate(0);
    EXPECT_NE(p, q); // distinct live zero-byte blocks
    arena.deallocate(p);
    arena.deallocate(q);
    EXPECT_EQ(arena.stats().bad_frees, 0u);
    EXPECT_EQ(arena.stats().bytes_in_use, 0u);
}

TEST(Arena, ForEachLiveEnumeratesHandedOutBlocks) {
    PoolArena arena;
    void* a = arena.allocate(100);
    void* b = arena.allocate(5000);
    std::size_t blocks = 0;
    std::size_t bytes = 0;
    arena.forEachLive([&](void*, std::size_t sz) {
        ++blocks;
        bytes += sz;
    });
    EXPECT_EQ(blocks, 2u);
    EXPECT_GE(bytes, 5100u); // size-class rounded
    arena.deallocate(a);
    arena.deallocate(b);
    blocks = 0;
    arena.forEachLive([&](void*, std::size_t) { ++blocks; });
    EXPECT_EQ(blocks, 0u);
}

TEST(TheArena, DefaultFollowsEnvironmentAndSwappable) {
    // The unset default is whatever EXA_ARENA selects (the pool arena when
    // the variable is absent) — the debug-backend suite runs this same
    // test with EXA_ARENA=guard.
    Arena* saved = The_Arena();
    setTheArena(nullptr);
    EXPECT_EQ(The_Arena(), defaultArena());
    setTheArena(&theMallocArena());
    EXPECT_EQ(The_Arena(), &theMallocArena());
    setTheArena(&thePoolArena());
    EXPECT_EQ(The_Arena(), &thePoolArena());
    setTheArena(saved);
}
