#include "core/box.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

using namespace exa;

TEST(IntVect, Arithmetic) {
    IntVect a{1, 2, 3}, b{4, 5, 6};
    EXPECT_EQ(a + b, (IntVect{5, 7, 9}));
    EXPECT_EQ(b - a, (IntVect{3, 3, 3}));
    EXPECT_EQ(a * 2, (IntVect{2, 4, 6}));
    EXPECT_EQ(-a, (IntVect{-1, -2, -3}));
    EXPECT_TRUE(a.allLE(b));
    EXPECT_FALSE(b.allLE(a));
    EXPECT_EQ(min(a, b), a);
    EXPECT_EQ(max(a, b), b);
    EXPECT_EQ(IntVect::basis(1), (IntVect{0, 1, 0}));
}

TEST(IntVect, CoarsenIndexRoundsTowardNegInf) {
    EXPECT_EQ(coarsen_index(0, 2), 0);
    EXPECT_EQ(coarsen_index(1, 2), 0);
    EXPECT_EQ(coarsen_index(2, 2), 1);
    EXPECT_EQ(coarsen_index(-1, 2), -1);
    EXPECT_EQ(coarsen_index(-2, 2), -1);
    EXPECT_EQ(coarsen_index(-3, 2), -2);
    EXPECT_EQ(coarsen_index(-4, 4), -1);
    EXPECT_EQ(coarsen_index(-5, 4), -2);
}

TEST(Box, BasicGeometry) {
    Box b({0, 0, 0}, {7, 15, 31});
    EXPECT_TRUE(b.ok());
    EXPECT_EQ(b.length(0), 8);
    EXPECT_EQ(b.length(1), 16);
    EXPECT_EQ(b.length(2), 32);
    EXPECT_EQ(b.numPts(), 8 * 16 * 32);
    EXPECT_TRUE(b.contains(0, 0, 0));
    EXPECT_TRUE(b.contains(7, 15, 31));
    EXPECT_FALSE(b.contains(8, 0, 0));
    EXPECT_FALSE(b.contains(-1, 0, 0));
}

TEST(Box, EmptyBox) {
    Box e;
    EXPECT_FALSE(e.ok());
    EXPECT_EQ(e.numPts(), 0);
    Box b({0, 0, 0}, {3, 3, 3});
    EXPECT_FALSE((b & Box({10, 10, 10}, {12, 12, 12})).ok());
}

TEST(Box, Intersection) {
    Box a({0, 0, 0}, {7, 7, 7});
    Box b({4, 4, 4}, {11, 11, 11});
    Box i = a & b;
    EXPECT_EQ(i, Box({4, 4, 4}, {7, 7, 7}));
    EXPECT_TRUE(a.intersects(b));
    EXPECT_EQ(i.numPts(), 64);
}

TEST(Box, GrowShift) {
    Box b({0, 0, 0}, {3, 3, 3});
    EXPECT_EQ(grow(b, 2), Box({-2, -2, -2}, {5, 5, 5}));
    EXPECT_EQ(grow(b, 1, 2), Box({0, -2, 0}, {3, 5, 3}));
    EXPECT_EQ(shift(b, {1, 0, -1}), Box({1, 0, -1}, {4, 3, 2}));
    Box f = surroundingFaces(b, 0);
    EXPECT_EQ(f, Box({0, 0, 0}, {4, 3, 3}));
}

TEST(Box, CoarsenRefineRoundTrip) {
    Box b({0, 0, 0}, {63, 63, 63});
    Box c = coarsen(b, 2);
    EXPECT_EQ(c, Box({0, 0, 0}, {31, 31, 31}));
    EXPECT_EQ(refine(c, 2), b);
    EXPECT_TRUE(b.coarsenable(2));
    EXPECT_TRUE(b.coarsenable(4));

    Box odd({0, 0, 0}, {8, 8, 8}); // 9 zones per dim
    EXPECT_FALSE(odd.coarsenable(2));
}

TEST(Box, CoarsenNegativeIndices) {
    Box b({-4, -4, -4}, {3, 3, 3});
    Box c = coarsen(b, 4);
    EXPECT_EQ(c, Box({-1, -1, -1}, {0, 0, 0}));
}

TEST(BoxDiff, DisjointReturnsOriginal) {
    Box a({0, 0, 0}, {3, 3, 3});
    auto d = boxDiff(a, Box({10, 10, 10}, {11, 11, 11}));
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0], a);
}

TEST(BoxDiff, FullyCoveredReturnsEmpty) {
    Box a({1, 1, 1}, {2, 2, 2});
    auto d = boxDiff(a, Box({0, 0, 0}, {3, 3, 3}));
    EXPECT_TRUE(d.empty());
}

TEST(BoxDiff, PiecesAreDisjointAndCoverDifference) {
    Box a({0, 0, 0}, {7, 7, 7});
    Box b({2, 3, 4}, {5, 9, 5});
    auto pieces = boxDiff(a, b);
    // Count zones: total must equal |a| - |a ∩ b|, and no zone may be
    // covered twice or inside b.
    std::int64_t count = 0;
    for (const auto& p : pieces) {
        EXPECT_TRUE(a.contains(p));
        EXPECT_FALSE(p.intersects(b));
        count += p.numPts();
        for (const auto& q : pieces) {
            if (&p != &q) { EXPECT_FALSE(p.intersects(q)); }
        }
    }
    EXPECT_EQ(count, a.numPts() - (a & b).numPts());
}

TEST(ChopDomain, TilesExactly) {
    Box dom({0, 0, 0}, {63, 63, 63});
    auto boxes = chopDomain(dom, 32);
    EXPECT_EQ(boxes.size(), 8u);
    std::int64_t total = 0;
    for (const auto& b : boxes) {
        EXPECT_TRUE(dom.contains(b));
        EXPECT_LE(b.size().max(), 32);
        total += b.numPts();
    }
    EXPECT_EQ(total, dom.numPts());
}

TEST(ChopDomain, UnevenSplitIsBalanced) {
    Box dom({0, 0, 0}, {99, 0, 0}); // 100 zones, max 32 -> 4 cuts of 25
    auto boxes = chopDomain(dom, IntVect{32, 64, 64});
    ASSERT_EQ(boxes.size(), 4u);
    for (const auto& b : boxes) EXPECT_EQ(b.length(0), 25);
}

class ChopDomainSweep : public ::testing::TestWithParam<int> {};

TEST_P(ChopDomainSweep, NoOverlapFullCover) {
    const int max_width = GetParam();
    Box dom({0, 0, 0}, {47, 31, 23});
    auto boxes = chopDomain(dom, max_width);
    std::int64_t total = 0;
    for (size_t i = 0; i < boxes.size(); ++i) {
        total += boxes[i].numPts();
        EXPECT_LE(boxes[i].size().max(), max_width);
        for (size_t j = i + 1; j < boxes.size(); ++j) {
            EXPECT_FALSE(boxes[i].intersects(boxes[j]));
        }
    }
    EXPECT_EQ(total, dom.numPts());
}

INSTANTIATE_TEST_SUITE_P(Widths, ChopDomainSweep, ::testing::Values(7, 8, 16, 24, 32, 48));
