#include "core/arena.hpp"
#include "core/array4.hpp"
#include "core/parallel_for.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace exa;

namespace {

std::vector<Real> run_fill(Backend be) {
    ScopedBackend sb(be);
    Box b({0, 0, 0}, {7, 7, 7});
    std::vector<Real> data(b.numPts(), 0.0);
    Array4<Real> a(data.data(), b, 1);
    ParallelFor(b, [=](int i, int j, int k) {
        a(i, j, k) = std::sin(0.1 * i) + std::cos(0.2 * j) * k;
    });
    return data;
}

} // namespace

TEST(ParallelFor, BackendsBitIdentical) {
    auto serial = run_fill(Backend::Serial);
    auto omp = run_fill(Backend::OpenMP);
    auto gpu = run_fill(Backend::SimGpu);
    auto dbg = run_fill(Backend::Debug);
    EXPECT_EQ(serial, omp);
    EXPECT_EQ(serial, gpu);
    EXPECT_EQ(serial, dbg);
}

TEST(ParallelFor, VisitsEveryZoneExactlyOnce) {
    // Arena-backed so the count survives Backend::Debug's replay passes
    // (the checker snapshots and restores arena-resident state only).
    Box b({-2, 0, 3}, {4, 5, 6});
    int* count = static_cast<int*>(The_Arena()->allocate(sizeof(int) * b.numPts()));
    std::fill(count, count + b.numPts(), 0);
    Array4<int> a(count, b, 1);
    ParallelFor(b, [=](int i, int j, int k) { a(i, j, k) += 1; });
    for (std::int64_t idx = 0; idx < b.numPts(); ++idx) EXPECT_EQ(count[idx], 1);
    The_Arena()->deallocate(count);
}

TEST(ParallelFor, ComponentVariantCoversAllComponents) {
    Box b({0, 0, 0}, {3, 3, 3});
    const int nc = 5;
    std::vector<int> data(b.numPts() * nc, 0);
    Array4<int> a(data.data(), b, nc);
    ParallelFor(b, nc, [=](int i, int j, int k, int n) { a(i, j, k, n) = n + 1; });
    for (int n = 0; n < nc; ++n) {
        for (int idx = 0; idx < b.numPts(); ++idx) {
            EXPECT_EQ(data[n * b.numPts() + idx], n + 1);
        }
    }
}

TEST(ParallelFor, EmptyBoxDoesNothing) {
    Box e;
    bool touched = false;
    ParallelFor(e, [&](int, int, int) { touched = true; });
    EXPECT_FALSE(touched);
}

TEST(ParallelFor, OneDimensional) {
    std::vector<int> v(100, 0);
    int* p = v.data();
    ParallelFor(static_cast<std::int64_t>(v.size()),
                [=](std::int64_t i) { p[i] = static_cast<int>(2 * i); });
    EXPECT_EQ(v[99], 198);
    EXPECT_EQ(v[0], 0);
}

TEST(ParallelReduce, SumMatchesAnalytic) {
    Box b({0, 0, 0}, {9, 9, 9});
    // sum over i of i for each (j,k): 45 * 100
    Real s = ParallelReduceSum(b, [](int i, int, int) { return static_cast<Real>(i); });
    EXPECT_DOUBLE_EQ(s, 45.0 * 100.0);
}

TEST(ParallelReduce, MaxMin) {
    Box b({0, 0, 0}, {4, 4, 4});
    Real mx = ParallelReduceMax(b, [](int i, int j, int k) {
        return static_cast<Real>(i + 10 * j + 100 * k);
    });
    EXPECT_DOUBLE_EQ(mx, 444.0);
    Real mn = ParallelReduceMin(b, [](int i, int j, int k) {
        return static_cast<Real>(i + 10 * j + 100 * k);
    });
    EXPECT_DOUBLE_EQ(mn, 0.0);
}

TEST(ParallelFor, SimGpuLaunchHookReceivesRecords) {
    ScopedBackend sb(Backend::SimGpu);
    std::vector<LaunchRecord> records;
    ExecConfig::setLaunchHook([&](const LaunchRecord& r) { records.push_back(r); });

    Box b({0, 0, 0}, {15, 15, 15});
    KernelInfo ki{"test_kernel", 10.0, 40.0, 80, 1.0};
    ParallelFor(ki, b, [](int, int, int) {});
    ParallelFor(ki, b, 4, [](int, int, int, int) {});

    ExecConfig::clearLaunchHook();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].zones, 4096);
    EXPECT_EQ(records[0].ncomp, 1);
    EXPECT_EQ(records[1].ncomp, 4);
    EXPECT_STREQ(records[0].info.name, "test_kernel");
    EXPECT_EQ(records[0].info.regs_per_thread, 80);
}

TEST(ParallelFor, SerialBackendDoesNotNotifyHook) {
    ScopedBackend sb(Backend::Serial);
    int launches = 0;
    ExecConfig::setLaunchHook([&](const LaunchRecord&) { ++launches; });
    Box b({0, 0, 0}, {3, 3, 3});
    ParallelFor(b, [](int, int, int) {});
    ExecConfig::clearLaunchHook();
    EXPECT_EQ(launches, 0);
}

TEST(ExecConfig, StreamsRoundTrip) {
    ExecConfig::setNumStreams(4);
    EXPECT_EQ(ExecConfig::numStreams(), 4);
    ExecConfig::setCurrentStream(3);
    EXPECT_EQ(ExecConfig::currentStream(), 3);
    ExecConfig::setCurrentStream(0);
    ExecConfig::setNumStreams(0); // clamps to 1
    EXPECT_EQ(ExecConfig::numStreams(), 1);
    ExecConfig::setNumStreams(4);
}

class ParallelForBoxShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ParallelForBoxShapes, ReduceCountEqualsNumPts) {
    auto [nx, ny, nz] = GetParam();
    Box b({0, 0, 0}, {nx - 1, ny - 1, nz - 1});
    Real n = ParallelReduceSum(b, [](int, int, int) { return 1.0; });
    EXPECT_DOUBLE_EQ(n, static_cast<Real>(b.numPts()));
}

INSTANTIATE_TEST_SUITE_P(Shapes, ParallelForBoxShapes,
                         ::testing::Values(std::tuple{1, 1, 1}, std::tuple{8, 1, 1},
                                           std::tuple{1, 8, 1}, std::tuple{1, 1, 8},
                                           std::tuple{16, 8, 4}, std::tuple{3, 5, 7}));
