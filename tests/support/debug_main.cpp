// gtest main for the `debug-backend` ctest label: reruns an existing test
// suite with the verification stack engaged — Backend::Debug for every
// ParallelFor and the canary GuardArena behind The_Arena(). Any contract
// or allocator violation aborts the binary (debug::abortOnViolation() is
// on by default), so a green run certifies zero violations.

#include "core/arena.hpp"
#include "core/executor.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

int main(int argc, char** argv) {
    ::testing::InitGoogleTest(&argc, argv);
    // Environment first, so code that re-resolves defaults (e.g.
    // The_Arena() after setTheArena(nullptr)) lands back on the
    // debug configuration rather than the production one.
    setenv("EXA_BACKEND", "debug", 1);
    setenv("EXA_ARENA", "guard", 1);
    exa::ExecConfig::setBackend(exa::Backend::Debug);
    exa::setTheArena(&exa::theGuardArena());
    return RUN_ALL_TESTS();
}
