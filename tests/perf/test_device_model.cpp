#include "core/array4.hpp"
#include <vector>
#include "core/parallel_for.hpp"
#include "perf/device_model.hpp"

#include <gtest/gtest.h>

using namespace exa;

TEST(GpuParams, OccupancyFromRegisterPressure) {
    GpuParams p;
    // 32 regs/thread: full occupancy (65536/32 = 2048 threads).
    EXPECT_DOUBLE_EQ(p.occupancy(32), 1.0);
    EXPECT_DOUBLE_EQ(p.occupancy(16), 1.0); // floor at 32
    // 64 regs: half occupancy.
    EXPECT_DOUBLE_EQ(p.occupancy(64), 0.5);
    // 255 regs: 65536/255 = 257 threads -> ~12.5%.
    EXPECT_NEAR(p.occupancy(255), 257.0 / 2048.0, 1e-12);
    // Past the cap, occupancy stops falling (spilling takes over instead).
    EXPECT_DOUBLE_EQ(p.occupancy(400), p.occupancy(255));
}

TEST(DeviceModel, BandwidthBoundKernelMatchesAnalytic) {
    GpuParams p;
    DeviceModel dev(p);
    KernelInfo ki{"stream", 1.0, 800.0, 32, 1.0}; // clearly memory bound
    const std::int64_t zones = 100'000'000;       // deep in saturation
    const double t = dev.bodyTime(ki, zones);
    const double ideal = zones * 800.0 / p.mem_bw;
    EXPECT_NEAR(t / ideal, 1.0, 0.01);
}

TEST(DeviceModel, FlopBoundKernelMatchesAnalytic) {
    GpuParams p;
    DeviceModel dev(p);
    KernelInfo ki{"compute", 100000.0, 8.0, 64, 1.0}; // clearly flop bound
    const std::int64_t zones = 10'000'000;
    const double t = dev.bodyTime(ki, zones);
    const double ideal = zones * 100000.0 / p.flops; // occ 0.5 saturates flops
    EXPECT_NEAR(t / ideal, 1.0, 0.01);
}

TEST(DeviceModel, SmallLaunchesArePenalized) {
    DeviceModel dev;
    KernelInfo ki{"stream", 1.0, 100.0, 32, 1.0};
    // Same total zones, split into 512 small launches vs 1 big one.
    const std::int64_t big = 1 << 21;
    const double t_big = dev.launchTime({ki, big, 1, 0});
    double t_small = 0;
    for (int i = 0; i < 512; ++i) t_small += dev.launchTime({ki, big / 512, 1, 0});
    EXPECT_GT(t_small, 3.0 * t_big);
}

TEST(DeviceModel, ThroughputSaturatesNearHundredCubed) {
    // Paper: ~100^3 zones saturate the GPU. Check the ramp: 128^3 achieves
    // >75% of asymptotic throughput, 16^3 achieves <15%.
    DeviceModel dev;
    KernelInfo ki{"hydro", 200.0, 400.0, 64, 1.0};
    auto zps = [&](std::int64_t z) { return z / dev.bodyTime(ki, z); };
    const double peak = zps(1LL << 30);
    EXPECT_GT(zps(128 * 128 * 128), 0.75 * peak);
    EXPECT_LT(zps(16 * 16 * 16), 0.15 * peak);
}

TEST(DeviceModel, RegisterSpillingAddsTraffic) {
    DeviceModel dev;
    KernelInfo ok{"net_small", 500.0, 200.0, 200, 1.0};
    KernelInfo spill = ok;
    spill.regs_per_thread = 355; // 100 spilled regs
    const std::int64_t z = 10'000'000;
    EXPECT_GT(dev.bodyTime(spill, z), dev.bodyTime(ok, z));
}

TEST(DeviceModel, OversubscriptionCollapsesBandwidth) {
    DeviceModel dev;
    KernelInfo ki{"stream", 1.0, 400.0, 32, 1.0};
    const std::int64_t z = 50'000'000;
    const double fit = dev.bodyTime(ki, z);
    dev.setResidentBytes(32.0e9); // 2x the 16 GB capacity
    EXPECT_TRUE(dev.oversubscribed());
    const double over = dev.bodyTime(ki, z);
    // Half the working set at ~6 GB/s vs 900 GB/s: order of magnitude hit.
    EXPECT_GT(over, 10.0 * fit);
}

TEST(DeviceModel, WorkImbalanceTailLatency) {
    // The launch cannot retire before its most expensive zone, which runs
    // at single-thread speed. A mild imbalance hides inside the uniform
    // time; an igniting-zone imbalance dominates it.
    GpuParams p;
    DeviceModel dev(p);
    KernelInfo uniform{"burn", 5000.0, 300.0, 128, 1.0};
    KernelInfo mild = uniform;
    mild.work_imbalance = 10.0;
    KernelInfo extreme = uniform;
    extreme.work_imbalance = 1.0e5;
    const std::int64_t z = 1'000'000;
    EXPECT_DOUBLE_EQ(dev.bodyTime(mild, z), dev.bodyTime(uniform, z));
    const double t_tail = 1.0e5 * 5000.0 / p.single_thread_flops;
    EXPECT_NEAR(dev.bodyTime(extreme, z), t_tail, 1e-12);
    EXPECT_GT(dev.bodyTime(extreme, z), 10.0 * dev.bodyTime(uniform, z));
}

TEST(DeviceModel, AttachAccumulatesFromSimGpuBackend) {
    ScopedBackend sb(Backend::SimGpu);
    ExecConfig::setNumStreams(4);
    DeviceModel dev;
    dev.attach();
    Box b({0, 0, 0}, {31, 31, 31});
    std::vector<Real> data(b.numPts());
    Array4<Real> a(data.data(), b, 1);
    KernelInfo ki{"fill", 1.0, 8.0, 32, 1.0};
    for (int rep = 0; rep < 10; ++rep) {
        ParallelFor(ki, b, [=](int i, int j, int k) { a(i, j, k) = i + j + k; });
    }
    dev.detach();
    EXPECT_EQ(dev.numLaunches(), 10);
    EXPECT_EQ(dev.numZones(), 10 * b.numPts());
    EXPECT_GT(dev.elapsedSeconds(), 0.0);
    EXPECT_LE(dev.elapsedSeconds(), dev.serializedSeconds() + 1e-15);
    const auto& ks = dev.kernelStats();
    ASSERT_EQ(ks.count("fill"), 1u);
    EXPECT_EQ(ks.at("fill").launches, 10);
}

TEST(DeviceModel, StreamsHideLaunchLatency) {
    // Many tiny launches: with 4 streams, elapsed ~ serialized/4 for the
    // latency-dominated part.
    GpuParams p;
    ExecConfig::setNumStreams(4);
    DeviceModel dev(p);
    KernelInfo ki{"tiny", 1.0, 8.0, 32, 1.0};
    for (int i = 0; i < 100; ++i) {
        LaunchRecord r;
        r.info = ki;
        r.zones = 8; // negligible body
        r.ncomp = 1;
        r.stream = i % 4;
        // feed directly through attach path
        dev.attach();
        ExecConfig::notifyLaunch(r);
        dev.detach();
    }
    EXPECT_LT(dev.elapsedSeconds(), 0.5 * dev.serializedSeconds());
}

TEST(DeviceModel, TransferTimeForCheckpoints) {
    DeviceModel dev;
    EXPECT_NEAR(dev.transferTime(45.0e9), 1.0, 1e-9);
}
