#include "perf/scaling.hpp"

#include <gtest/gtest.h>

using namespace exa;

namespace {

// A Castro-Sedov-like kernel mix: reconstruction+flux kernels per
// dimension plus conservative update and EOS calls. Bandwidth-heavy,
// moderate register pressure.
StepModel sedovLikeStep() {
    StepModel s;
    s.kernels = {
        {{"hydro_recon", 350.0, 700.0, 96, 1.0}, 3.0, 1.3},
        {{"hydro_flux", 450.0, 500.0, 128, 1.0}, 3.0, 1.1},
        {{"cons_update", 120.0, 400.0, 64, 1.0}, 1.0, 1.0},
        {{"eos", 220.0, 180.0, 80, 1.0}, 2.0, 1.2},
    };
    s.fillboundary_phases_per_step = 2;
    s.halo_ncomp = 6;
    s.halo_ngrow = 4;
    s.allreduces_per_step = 1;
    return s;
}

} // namespace

TEST(NearCubicFactors, FactorizesNodeCounts) {
    int fx, fy, fz;
    nearCubicFactors(8, fx, fy, fz);
    EXPECT_EQ(fx * fy * fz, 8);
    EXPECT_EQ(std::max({fx, fy, fz}), 2);
    nearCubicFactors(512, fx, fy, fz);
    EXPECT_EQ(fx * fy * fz, 512);
    EXPECT_EQ(std::max({fx, fy, fz}), 8);
    nearCubicFactors(27, fx, fy, fz);
    EXPECT_EQ(std::max({fx, fy, fz}), 3);
    nearCubicFactors(1, fx, fy, fz);
    EXPECT_EQ(fx * fy * fz, 1);
    nearCubicFactors(125, fx, fy, fz);
    EXPECT_EQ(std::max({fx, fy, fz}), 5);
    nearCubicFactors(6, fx, fy, fz);
    EXPECT_EQ(fx * fy * fz, 6);
}

TEST(WeakScalingModel, SingleNodeThroughputIsFinite) {
    WeakScalingModel model(MachineParams::summit());
    auto pt = model.run(1, 256, 64, sedovLikeStep());
    EXPECT_GT(pt.zones_per_usec, 10.0);
    EXPECT_LT(pt.zones_per_usec, 2000.0);
    EXPECT_GT(pt.compute_s, 0.0);
    EXPECT_GT(pt.halo_s, 0.0);
}

TEST(WeakScalingModel, EfficiencyDecaysWithNodes) {
    WeakScalingModel model(MachineParams::summit());
    const StepModel step = sedovLikeStep();
    const auto p1 = model.run(1, 256, 64, step);
    const auto p8 = model.run(8, 256, 64, step);
    const auto p64 = model.run(64, 256, 64, step);
    const auto p512 = model.run(512, 256, 64, step);
    auto eff = [&](const ScalingPoint& p) {
        return p.zones_per_usec / (p1.zones_per_usec * p.nodes);
    };
    EXPECT_GT(eff(p8), eff(p64));
    EXPECT_GT(eff(p64), eff(p512));
    EXPECT_GT(eff(p512), 0.3); // loses efficiency but does not collapse
    EXPECT_LT(eff(p512), 0.9);
}

TEST(WeakScalingModel, LoadQuantizationHurtsThroughput) {
    // 64 boxes over 6 ranks (paper's fiducial case): ceil(64/6)=11 boxes on
    // the busiest rank vs a perfectly divisible 12-rank layout.
    WeakScalingModel model(MachineParams::summit());
    const auto pt = model.run(1, 256, 64, sedovLikeStep());
    EXPECT_NEAR(pt.imbalance, 11.0 * 6.0 / 64.0, 1e-12);
}

TEST(WeakScalingModel, SmallBoxesReduceSingleGpuThroughput) {
    WeakScalingModel model(MachineParams::summit());
    const StepModel step = sedovLikeStep();
    const double t16 = model.singleGpuZonesPerUsec(128, 16, step);
    const double t64 = model.singleGpuZonesPerUsec(128, 64, step);
    EXPECT_GT(t64, 2.0 * t16);
}

TEST(WeakScalingModel, MultigridDominatesAtScale) {
    // The Fig. 3 mechanism: MG share of the step grows with node count.
    WeakScalingModel model(MachineParams::summit());
    StepModel step;
    step.kernels = {{{"burn", 30000.0, 600.0, 220, 1.0}, 1.0, 1.0}};
    step.fillboundary_phases_per_step = 2;
    step.halo_ncomp = 4;
    step.halo_ngrow = 3;
    MultigridModel mg;
    const auto p1 = model.run(1, 128, 32, step, &mg);
    const auto p125 = model.run(125, 128, 32, step, &mg);
    const double share1 = p1.mg_s / p1.total_s;
    const double share125 = p125.mg_s / p125.total_s;
    EXPECT_GT(share125, share1);
    EXPECT_GT(p125.mg_s / p125.compute_s, p1.mg_s / p1.compute_s);
}

TEST(WeakScalingModel, OneRankPerGpuLayout) {
    WeakScalingModel model(MachineParams::summit());
    EXPECT_EQ(model.machine().gpus_per_node, 6);
}
