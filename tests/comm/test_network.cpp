#include "comm/halo_pattern.hpp"
#include "comm/ledger.hpp"
#include "comm/network.hpp"
#include "mesh/multifab.hpp"

#include <gtest/gtest.h>

using namespace exa;

TEST(RankLayout, NodeMapping) {
    RankLayout l{4, 6};
    EXPECT_EQ(l.numRanks(), 24);
    EXPECT_EQ(l.nodeOf(0), 0);
    EXPECT_EQ(l.nodeOf(5), 0);
    EXPECT_EQ(l.nodeOf(6), 1);
    EXPECT_TRUE(l.sameNode(0, 5));
    EXPECT_FALSE(l.sameNode(5, 6));
}

TEST(NetworkModel, OnNodeCheaperThanOffNode) {
    NetworkModel net;
    EXPECT_LT(net.p2pTime(1 << 20, true, 64), net.p2pTime(1 << 20, false, 64));
}

TEST(NetworkModel, LatencyGrowsWithScale) {
    NetworkModel net;
    EXPECT_LT(net.p2pTime(8, false, 1), net.p2pTime(8, false, 512));
    EXPECT_GT(net.hopFactor(512), net.hopFactor(8));
    EXPECT_DOUBLE_EQ(net.hopFactor(1), 1.0);
}

TEST(NetworkModel, BandwidthTermDominatesLargeMessages) {
    NetworkModel net;
    const double t_small = net.p2pTime(8, false, 8);
    const double t_big = net.p2pTime(100 << 20, false, 8);
    EXPECT_GT(t_big, 100 * t_small);
    // Large-message time approximately linear in bytes.
    EXPECT_NEAR(net.p2pTime(200 << 20, false, 8) / t_big, 2.0, 0.05);
}

TEST(NetworkModel, AllreduceScalesLogarithmically) {
    NetworkModel net;
    const double t8 = net.allreduceTime(8, 48, 8);
    const double t512 = net.allreduceTime(8, 3072, 512);
    EXPECT_GT(t512, t8);
    // log2(3072)/log2(48) ~ 2.07, plus congestion: well under 10x.
    EXPECT_LT(t512, 10 * t8);
    EXPECT_DOUBLE_EQ(net.allreduceTime(8, 1, 1), 0.0);
}

TEST(CommLedger, AggregatesMessages) {
    CommLedger ledger;
    ledger.record({0, 1, 1000, "fillboundary"});
    ledger.record({0, 1, 500, "fillboundary"});
    ledger.record({2, 3, 200, "parallelcopy"});
    EXPECT_EQ(ledger.totalBytes(), 1700);
    EXPECT_EQ(ledger.totalMessages(), 3);
    EXPECT_EQ(ledger.bytesWithTag("fillboundary"), 1500);
    EXPECT_EQ(ledger.bytesWithTag("parallelcopy"), 200);
    RankLayout l{2, 2}; // ranks 0,1 node 0; 2,3 node 1
    EXPECT_EQ(ledger.offNodeBytes(l), 0);
    ledger.record({0, 3, 400, "fillboundary"});
    EXPECT_EQ(ledger.offNodeBytes(l), 400);
    ledger.reset();
    EXPECT_EQ(ledger.totalBytes(), 0);
}

TEST(CommLedger, AttachCapturesFillBoundaryTraffic) {
    BoxArray ba(Box({0, 0, 0}, {15, 15, 15}));
    ba.maxSize(8);
    DistributionMapping dm(ba, 8);
    MultiFab mf(ba, dm, 2, 1);
    mf.setVal(1.0);
    CommLedger ledger;
    ledger.attach();
    mf.FillBoundary();
    ledger.detach();
    EXPECT_GT(ledger.totalMessages(), 0);
    // 2x2x2 boxes, ng=1, nc=2: zones = 24*64 + 24*8 + 8 (from mesh test).
    EXPECT_EQ(ledger.totalBytes(), (24 * 64 + 24 * 8 + 8) * 2 * 8);
}

TEST(CommLedger, PhaseTimeIsMaxOverRanks) {
    CommLedger ledger;
    NetworkModel net;
    RankLayout l{2, 1};
    ledger.record({0, 1, 1 << 20, "x"});
    const double t1 = ledger.phaseTime(l, net);
    EXPECT_NEAR(t1, net.p2pTime(1 << 20, false, 2), 1e-12);
    // A second, disjoint pair on the same nodes doesn't extend the phase
    // (runs concurrently)...
    RankLayout l4{4, 1};
    CommLedger two;
    two.record({0, 1, 1 << 20, "x"});
    two.record({2, 3, 1 << 20, "x"});
    EXPECT_NEAR(two.phaseTime(l4, net), net.p2pTime(1 << 20, false, 4), 1e-12);
    // ...but a second message from the same src serializes.
    CommLedger ser;
    ser.record({0, 1, 1 << 20, "x"});
    ser.record({0, 2, 1 << 20, "x"});
    EXPECT_NEAR(ser.phaseTime(l4, net), 2 * net.p2pTime(1 << 20, false, 4), 1e-12);
}

TEST(HaloPattern, MatchesRealFillBoundaryTraffic) {
    // The analytic pattern must reproduce the mesh layer's actual off-rank
    // traffic for a matching decomposition (periodic, SFC ranks).
    RegularDecomposition d;
    d.nbx = d.nby = d.nbz = 4;
    d.bx = d.by = d.bz = 8;
    d.ngrow = 2;
    d.ncomp = 3;
    d.periodic = true;

    CommLedger analytic;
    buildHaloPattern(d, 16, analytic);

    BoxArray ba = makeBoxArray(d);
    DistributionMapping dm(ba, 16, DistributionMapping::Strategy::Sfc);
    MultiFab mf(ba, dm, d.ncomp, d.ngrow);
    mf.setVal(0.0);
    CommLedger real;
    real.attach();
    mf.FillBoundary(0, mf.nComp(), Periodicity(IntVect{32, 32, 32}));
    real.detach();

    EXPECT_EQ(analytic.totalBytes(), real.totalBytes());
}

TEST(HaloPattern, NonPeriodicHasLessTraffic) {
    RegularDecomposition d;
    d.nbx = d.nby = d.nbz = 4;
    d.bx = d.by = d.bz = 8;
    d.ngrow = 1;
    CommLedger per, nonper;
    buildHaloPattern(d, 64, per);
    d.periodic = false;
    buildHaloPattern(d, 64, nonper);
    EXPECT_LT(nonper.totalBytes(), per.totalBytes());
}

TEST(HaloPattern, SurfaceScalesWithBoxCount) {
    // Doubling the box grid per dim multiplies off-rank surface ~8x when
    // every box is its own rank (all halos off-rank).
    RegularDecomposition d;
    d.nbx = d.nby = d.nbz = 2;
    d.bx = d.by = d.bz = 16;
    d.ngrow = 2;
    CommLedger small;
    buildHaloPattern(d, 8, small);
    d.nbx = d.nby = d.nbz = 4;
    CommLedger big;
    buildHaloPattern(d, 64, big);
    EXPECT_NEAR(static_cast<double>(big.totalBytes()) / small.totalBytes(), 8.0, 0.01);
}
