// Tests for the split-phase halo exchange: FillBoundary_nowait /
// ParallelCopy_nowait + HaloHandle::finish() must be bit-identical to the
// fused (blocking) calls on every backend, across the driver-level
// overlap paths (Castro RK stages, Maestro advection, the multigrid
// smoother, AMR fillPatch), with identical CommHooks accounting, and the
// Debug backend must flag handle-lifecycle mistakes (forgotten finish,
// double finish).
#include "castro/sedov.hpp"
#include "comm/halo_handle.hpp"
#include "comm/ledger.hpp"
#include "core/debug.hpp"
#include "core/executor.hpp"
#include "maestro/maestro.hpp"
#include "mesh/comm_hooks.hpp"
#include "mesh/copier_cache.hpp"
#include "mesh/interp.hpp"
#include "mesh/multifab.hpp"
#include "solvers/multigrid.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

using namespace exa;

namespace {

Real f(int i, int j, int k, int n) {
    return std::sin(0.37 * i + 0.11 * j) + 0.21 * k + 1.7 * n;
}

MultiFab makeFilled(const BoxArray& ba, const DistributionMapping& dm, int ncomp,
                    int ngrow) {
    MultiFab mf(ba, dm, ncomp, ngrow);
    mf.setVal(-4.0e30); // poison ghosts so un-filled zones still compare
    for (std::size_t b = 0; b < mf.size(); ++b) {
        auto a = mf.array(static_cast<int>(b));
        const Box& vb = mf.box(static_cast<int>(b));
        for (int n = 0; n < ncomp; ++n)
            for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
                for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                    for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i)
                        a(i, j, k, n) = f(i, j, k, n);
    }
    return mf;
}

// Bitwise equality over valid + ghost zones.
void expectIdentical(const MultiFab& a, const MultiFab& b) {
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.nComp(), b.nComp());
    ASSERT_EQ(a.nGrow(), b.nGrow());
    for (std::size_t fb = 0; fb < a.size(); ++fb) {
        auto aa = a.const_array(static_cast<int>(fb));
        auto bb = b.const_array(static_cast<int>(fb));
        const Box gb = a.fabbox(static_cast<int>(fb));
        for (int n = 0; n < a.nComp(); ++n)
            for (int k = gb.smallEnd(2); k <= gb.bigEnd(2); ++k)
                for (int j = gb.smallEnd(1); j <= gb.bigEnd(1); ++j)
                    for (int i = gb.smallEnd(0); i <= gb.bigEnd(0); ++i)
                        ASSERT_EQ(aa(i, j, k, n), bb(i, j, k, n))
                            << "fab " << fb << " @ " << i << ' ' << j << ' ' << k
                            << " comp " << n;
    }
}

} // namespace

// --- primitive-level bit-identity, all backends --------------------------

class AsyncHaloBackends : public ::testing::TestWithParam<Backend> {};

TEST_P(AsyncHaloBackends, FillBoundaryAsyncMatchesSync) {
    ScopedBackend backend(GetParam());
    for (bool periodic : {false, true}) {
        const int nx = 24;
        BoxArray ba(Box({0, 0, 0}, {nx - 1, nx - 1, nx - 1}));
        ba.maxSize(8);
        DistributionMapping dm(ba, 4);
        const Periodicity per = periodic ? Periodicity(IntVect{nx, nx, nx})
                                         : Periodicity::nonPeriodic();

        MultiFab sync_mf = makeFilled(ba, dm, 3, 2);
        {
            comm::ScopedAsyncHalo off(false);
            sync_mf.FillBoundary(0, 3, per);
        }
        MultiFab async_mf = makeFilled(ba, dm, 3, 2);
        {
            comm::ScopedAsyncHalo on(true);
            comm::HaloHandle h = async_mf.FillBoundary_nowait(0, 3, per);
            EXPECT_TRUE(h.pending());
            h.finish();
            EXPECT_FALSE(h.pending());
        }
        expectIdentical(sync_mf, async_mf);

        // Partial component range.
        MultiFab sync_p = makeFilled(ba, dm, 3, 2);
        {
            comm::ScopedAsyncHalo off(false);
            sync_p.FillBoundary(1, 2, per);
        }
        MultiFab async_p = makeFilled(ba, dm, 3, 2);
        {
            comm::ScopedAsyncHalo on(true);
            comm::HaloHandle h = async_p.FillBoundary_nowait(1, 2, per);
            h.finish();
        }
        expectIdentical(sync_p, async_p);
    }
}

TEST_P(AsyncHaloBackends, ParallelCopyAsyncMatchesSync) {
    ScopedBackend backend(GetParam());
    const int nx = 16;
    BoxArray sba(Box({0, 0, 0}, {nx - 1, nx - 1, nx - 1}));
    sba.maxSize(8);
    DistributionMapping sdm(sba, 4);
    MultiFab src = makeFilled(sba, sdm, 2, 0);

    BoxArray dba(Box({0, 0, 0}, {nx - 1, nx - 1, nx - 1}));
    dba.maxSize(4); // different decomposition
    DistributionMapping ddm(dba, 3);
    const Periodicity per(IntVect{nx, nx, nx});

    MultiFab sync_dst(dba, ddm, 2, 1);
    sync_dst.setVal(-1.0);
    {
        comm::ScopedAsyncHalo off(false);
        sync_dst.ParallelCopy(src, 0, 0, 2, 1, per);
    }
    MultiFab async_dst(dba, ddm, 2, 1);
    async_dst.setVal(-1.0);
    {
        comm::ScopedAsyncHalo on(true);
        comm::HaloHandle h = async_dst.ParallelCopy_nowait(src, 0, 0, 2, 1, per);
        EXPECT_TRUE(h.pending());
        h.finish();
    }
    expectIdentical(sync_dst, async_dst);
}

// Pack-at-post semantics: the payload is captured when the exchange is
// posted, so overwriting the source's valid zones between post and finish
// (what an in-place interior sweep does) must not change what the ghosts
// receive.
TEST_P(AsyncHaloBackends, PackAtPostIsInsensitiveToLaterSourceWrites) {
    ScopedBackend backend(GetParam());
    const int nx = 16;
    BoxArray ba(Box({0, 0, 0}, {nx - 1, nx - 1, nx - 1}));
    ba.maxSize(8);
    DistributionMapping dm(ba, 2);
    const Periodicity per(IntVect{nx, nx, nx});

    MultiFab sync_mf = makeFilled(ba, dm, 1, 1);
    {
        comm::ScopedAsyncHalo off(false);
        sync_mf.FillBoundary(0, 1, per);
    }
    MultiFab async_mf = makeFilled(ba, dm, 1, 1);
    {
        comm::ScopedAsyncHalo on(true);
        comm::HaloHandle h = async_mf.FillBoundary_nowait(0, 1, per);
        // Clobber the valid interior while the exchange is in flight: the
        // staged payload must be immune.
        for (std::size_t b = 0; b < async_mf.size(); ++b) {
            const Box inner = grow(async_mf.box(static_cast<int>(b)), -1);
            if (!inner.ok()) continue;
            auto a = async_mf.array(static_cast<int>(b));
            for (int k = inner.smallEnd(2); k <= inner.bigEnd(2); ++k)
                for (int j = inner.smallEnd(1); j <= inner.bigEnd(1); ++j)
                    for (int i = inner.smallEnd(0); i <= inner.bigEnd(0); ++i)
                        a(i, j, k) = 7.5;
        }
        h.finish();
    }
    // Ghost zones must match the sync fill of the *original* data.
    for (std::size_t fb = 0; fb < sync_mf.size(); ++fb) {
        auto aa = sync_mf.const_array(static_cast<int>(fb));
        auto bb = async_mf.const_array(static_cast<int>(fb));
        const Box gb = sync_mf.fabbox(static_cast<int>(fb));
        const Box vb = sync_mf.box(static_cast<int>(fb));
        for (int k = gb.smallEnd(2); k <= gb.bigEnd(2); ++k)
            for (int j = gb.smallEnd(1); j <= gb.bigEnd(1); ++j)
                for (int i = gb.smallEnd(0); i <= gb.bigEnd(0); ++i) {
                    if (vb.contains(i, j, k)) continue;
                    ASSERT_EQ(aa(i, j, k), bb(i, j, k))
                        << "ghost @ " << i << ' ' << j << ' ' << k;
                }
    }
}

TEST_P(AsyncHaloBackends, FillPatchAsyncMatchesSync) {
    ScopedBackend backend(GetParam());
    const Box cdom({0, 0, 0}, {15, 15, 15});
    Geometry cgeom(cdom, {0, 0, 0}, {1, 1, 1}, IntVect{1, 1, 1});
    Geometry fgeom = cgeom.refined(2);

    BoxArray cba(cdom);
    cba.maxSize(8);
    DistributionMapping cdm(cba, 2);
    MultiFab crse = makeFilled(cba, cdm, 1, 1);
    crse.FillBoundary(0, crse.nComp(), cgeom.periodicity());

    BoxArray fba(refine(Box({4, 4, 4}, {11, 11, 11}), 2));
    fba.maxSize(8);
    DistributionMapping fdm(fba, 2);
    MultiFab fine = makeFilled(fba, fdm, 1, 0);

    BoxArray dba(refine(Box({2, 2, 2}, {13, 13, 13}), 2));
    dba.maxSize(12);
    DistributionMapping ddm(dba, 2);

    MultiFab dst_sync(dba, ddm, 1, 2);
    dst_sync.setVal(0.0);
    {
        comm::ScopedAsyncHalo off(false);
        fillPatchTwoLevels(dst_sync, fine, crse, cgeom, fgeom, 2, 0, 0, 1, 2);
    }
    MultiFab dst_async(dba, ddm, 1, 2);
    dst_async.setVal(0.0);
    {
        comm::ScopedAsyncHalo on(true);
        fillPatchTwoLevels(dst_async, fine, crse, cgeom, fgeom, 2, 0, 0, 1, 2);
    }
    expectIdentical(dst_sync, dst_async);
}

// --- driver-level bit-identity -------------------------------------------

TEST_P(AsyncHaloBackends, CastroGuardedStepAsyncMatchesSync) {
    ScopedBackend backend(GetParam());
    auto net = makeIgnitionSimple();
    castro::SedovParams p;
    p.ncell = 16;
    p.max_grid_size = 8;
    p.nranks = 4;
    p.guard.enabled = true; // exercise snapshot/validate around the split path

    auto run = [&](bool async) {
        comm::ScopedAsyncHalo mode(async);
        auto c = p.build(net);
        const Real dt = c->estimateDt();
        for (int s = 0; s < 2; ++s) c->step(dt);
        return c;
    };
    auto sync_c = run(false);
    auto async_c = run(true);
    expectIdentical(sync_c->state(), async_c->state());
}

TEST_P(AsyncHaloBackends, CastroPpmStepAsyncMatchesSync) {
    // PPM widens the stencil to 3, giving a different interior partition
    // (and, on 8^3 boxes, a 2-zone-thick interior) than the PLM tests.
    ScopedBackend backend(GetParam());
    auto net = makeIgnitionSimple();
    auto run = [&](bool async) {
        comm::ScopedAsyncHalo mode(async);
        Box dom({0, 0, 0}, {15, 15, 15});
        Geometry geom(dom, {0, 0, 0}, {1, 1, 1});
        BoxArray ba(dom);
        ba.maxSize(8);
        DistributionMapping dm(ba, 2);
        castro::CastroOptions opt;
        opt.bc = DomainBC::allOutflow();
        opt.reconstruction = castro::Reconstruction::PPM;
        Eos eos{GammaLawEos{1.4}};
        auto c = std::make_unique<castro::Castro>(geom, ba, dm, net, eos, opt);
        c->initialize([&](Real x, Real, Real) {
            castro::Castro::InitialZone z;
            z.rho = x < 0.5 ? 1.0 : 0.125;
            z.p = x < 0.5 ? 1.0 : 0.1;
            z.X = {1.0, 0.0};
            return z;
        });
        c->step(c->estimateDt());
        return c;
    };
    auto sync_c = run(false);
    auto async_c = run(true);
    expectIdentical(sync_c->state(), async_c->state());
}

TEST_P(AsyncHaloBackends, MaestroAdvanceAsyncMatchesSync) {
    ScopedBackend backend(GetParam());
    auto net = makeIgnitionSimple();
    maestro::BubbleParams p;
    p.ncell = 16;
    p.max_grid_size = 8;
    p.nranks = 4;
    p.do_react = false;

    auto run = [&](bool async) {
        comm::ScopedAsyncHalo mode(async);
        auto m = p.build(net);
        const Real dt = m->estimateDt();
        m->step(dt);
        return m;
    };
    auto sync_m = run(false);
    auto async_m = run(true);
    expectIdentical(sync_m->state(), async_m->state());
}

TEST_P(AsyncHaloBackends, MultigridSolveAsyncMatchesSync) {
    ScopedBackend backend(GetParam());
    for (MgBC bc : {MgBC::Periodic, MgBC::Dirichlet}) {
        const int n = 16;
        Box dom({0, 0, 0}, {n - 1, n - 1, n - 1});
        const IntVect per = bc == MgBC::Periodic ? IntVect{1, 1, 1} : IntVect{0, 0, 0};
        Geometry geom(dom, {0, 0, 0}, {1, 1, 1}, per);
        BoxArray ba(dom);
        ba.maxSize(8);
        DistributionMapping dm(ba, 4);

        auto makeRhs = [&]() {
            MultiFab rhs(ba, dm, 1, 0);
            for (std::size_t i = 0; i < rhs.size(); ++i) {
                auto r = rhs.array(static_cast<int>(i));
                const Box& vb = rhs.box(static_cast<int>(i));
                for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
                    for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                        for (int i2 = vb.smallEnd(0); i2 <= vb.bigEnd(0); ++i2)
                            r(i2, j, k) = f(i2, j, k, 0);
            }
            return rhs;
        };

        auto run = [&](bool async, MultiFab& phi) {
            comm::ScopedAsyncHalo mode(async);
            Multigrid::Options opt;
            opt.max_vcycles = 4; // few cycles: enough to compare trajectories
            Multigrid mg(geom, bc, opt);
            MultiFab rhs = makeRhs();
            phi.define(ba, dm, 1, 1);
            phi.setVal(0.0);
            return mg.solve(phi, rhs);
        };
        MultiFab phi_sync, phi_async;
        const MgResult rs = run(false, phi_sync);
        const MgResult ra = run(true, phi_async);
        EXPECT_EQ(rs.vcycles, ra.vcycles);
        EXPECT_EQ(rs.final_resnorm, ra.final_resnorm);
        expectIdentical(phi_sync, phi_async);
    }
}

INSTANTIATE_TEST_SUITE_P(Backends, AsyncHaloBackends,
                         ::testing::Values(Backend::Serial, Backend::OpenMP,
                                           Backend::SimGpu, Backend::Debug),
                         [](const auto& info) {
                             return std::string(backendName(info.param));
                         });

// --- handle lifecycle ----------------------------------------------------

TEST(AsyncHalo, EmptyAndMovedHandlesAreSafe) {
    comm::HaloHandle empty;
    EXPECT_FALSE(empty.pending());
    empty.finish(); // no-op
    empty.finish(); // still a no-op, no violation on any backend

    const int nx = 8;
    BoxArray ba(Box({0, 0, 0}, {nx - 1, nx - 1, nx - 1}));
    ba.maxSize(4);
    DistributionMapping dm(ba, 1);
    MultiFab mf = makeFilled(ba, dm, 1, 1);
    comm::ScopedAsyncHalo on(true);
    comm::HaloHandle h = mf.FillBoundary_nowait(0, 1, Periodicity(IntVect{nx, nx, nx}));
    comm::HaloHandle h2 = std::move(h);
    EXPECT_FALSE(h.pending()); // NOLINT(bugprone-use-after-move): moved-from is empty
    EXPECT_TRUE(h2.pending());
    h.finish(); // moved-from: no-op
    h2.finish();
    EXPECT_FALSE(h2.pending());
}

TEST(AsyncHalo, DisabledAsyncRunsEagerly) {
    const int nx = 8;
    BoxArray ba(Box({0, 0, 0}, {nx - 1, nx - 1, nx - 1}));
    ba.maxSize(4);
    DistributionMapping dm(ba, 1);
    const Periodicity per(IntVect{nx, nx, nx});

    MultiFab reference = makeFilled(ba, dm, 1, 1);
    reference.FillBoundary(0, 1, per);

    comm::ScopedAsyncHalo off(false);
    MultiFab eager = makeFilled(ba, dm, 1, 1);
    comm::HaloHandle h = eager.FillBoundary_nowait(0, 1, per);
    EXPECT_FALSE(h.pending()); // already complete
    expectIdentical(reference, eager); // ghosts filled before finish()
    h.finish();                        // harmless
    expectIdentical(reference, eager);
}

TEST(AsyncHalo, DestructorCompletesDelivery) {
    // On the Debug backend the drop below is (deliberately) a lifecycle
    // violation; trap it so this test checks delivery on every backend.
    debug::ScopedViolationTrap trap;
    const int nx = 8;
    BoxArray ba(Box({0, 0, 0}, {nx - 1, nx - 1, nx - 1}));
    ba.maxSize(4);
    DistributionMapping dm(ba, 2);
    const Periodicity per(IntVect{nx, nx, nx});

    MultiFab reference = makeFilled(ba, dm, 1, 1);
    reference.FillBoundary(0, 1, per);

    comm::ScopedAsyncHalo on(true);
    MultiFab mf = makeFilled(ba, dm, 1, 1);
    {
        comm::HaloHandle h = mf.FillBoundary_nowait(0, 1, per);
        // Dropped without finish(): RAII must still deliver (and, on the
        // Debug backend, flag the forgotten finish — tested below).
    }
    expectIdentical(reference, mf);
    debug::clearViolations();
}

// --- Debug-backend lifecycle diagnostics ---------------------------------

TEST(AsyncHaloDebug, ForgottenFinishIsFlagged) {
    ScopedBackend backend(Backend::Debug);
    debug::ScopedViolationTrap trap;
    debug::clearViolations();

    const int nx = 8;
    BoxArray ba(Box({0, 0, 0}, {nx - 1, nx - 1, nx - 1}));
    ba.maxSize(4);
    DistributionMapping dm(ba, 2);
    const Periodicity per(IntVect{nx, nx, nx});

    MultiFab reference = makeFilled(ba, dm, 1, 1);
    reference.FillBoundary(0, 1, per);

    comm::ScopedAsyncHalo on(true);
    MultiFab mf = makeFilled(ba, dm, 1, 1);
    {
        comm::HaloHandle h = mf.FillBoundary_nowait(0, 1, per);
    } // destroyed pending
    const auto v = debug::violations();
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].kind, "halo-unfinished");
    // The destructor still completed the delivery.
    expectIdentical(reference, mf);
    debug::clearViolations();
}

TEST(AsyncHaloDebug, DoubleFinishIsFlagged) {
    ScopedBackend backend(Backend::Debug);
    debug::ScopedViolationTrap trap;
    debug::clearViolations();

    const int nx = 8;
    BoxArray ba(Box({0, 0, 0}, {nx - 1, nx - 1, nx - 1}));
    ba.maxSize(4);
    DistributionMapping dm(ba, 2);
    const Periodicity per(IntVect{nx, nx, nx});

    comm::ScopedAsyncHalo on(true);
    MultiFab mf = makeFilled(ba, dm, 1, 1);
    comm::HaloHandle h = mf.FillBoundary_nowait(0, 1, per);
    h.finish();
    EXPECT_TRUE(debug::violations().empty());
    h.finish(); // second finish: flagged, not re-delivered
    const auto v = debug::violations();
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].kind, "halo-double-finish");
    debug::clearViolations();
}

// --- ledger in-flight tracking -------------------------------------------

TEST(AsyncHalo, LedgerTracksSplitPhaseExchanges) {
    const int nx = 16;
    BoxArray ba(Box({0, 0, 0}, {nx - 1, nx - 1, nx - 1}));
    ba.maxSize(8);
    DistributionMapping dm(ba, 8); // one box per rank: everything off-rank
    const Periodicity per(IntVect{nx, nx, nx});

    comm::ScopedAsyncHalo on(true);
    CommLedger ledger;
    ledger.attach();

    MultiFab a = makeFilled(ba, dm, 1, 1);
    MultiFab b = makeFilled(ba, dm, 1, 1);
    {
        comm::HaloHandle ha = a.FillBoundary_nowait(0, 1, per);
        EXPECT_EQ(ledger.halosPosted(), 1);
        EXPECT_EQ(ledger.halosInFlight(), 1);
        comm::HaloHandle hb = b.FillBoundary_nowait(0, 1, per);
        EXPECT_EQ(ledger.halosPosted(), 2);
        EXPECT_EQ(ledger.halosInFlight(), 2);
        EXPECT_EQ(ledger.maxHalosInFlight(), 2);
        EXPECT_EQ(ledger.totalMessages(), 0); // nothing delivered yet
        ha.finish();
        EXPECT_EQ(ledger.halosInFlight(), 1);
        hb.finish();
        EXPECT_EQ(ledger.halosInFlight(), 0);
    }
    EXPECT_GT(ledger.totalMessages(), 0);
    // Every message was delivered by a finish() — i.e. overlapped.
    EXPECT_EQ(ledger.splitPhaseMessages(), ledger.totalMessages());

    // The same exchanges, fused, move identical bytes.
    CommLedger fused;
    ledger.detach();
    fused.attach();
    {
        comm::ScopedAsyncHalo off(false);
        a.FillBoundary(0, 1, per);
        b.FillBoundary(0, 1, per);
    }
    EXPECT_EQ(fused.totalBytes(), ledger.totalBytes());
    EXPECT_EQ(fused.totalMessages(), ledger.totalMessages());
    EXPECT_EQ(fused.halosPosted(), 0);
    EXPECT_EQ(fused.splitPhaseMessages(), 0);
    fused.detach();
}
