// The resilience subsystem (ctest label: resilience): Daly-scheduled
// asynchronous double-buffered checkpointing, rank-failure emulation with
// shrink recovery, per-fab localized restore with full-rollback fallback,
// the fault-campaign harness, and the CommLedger resilience counters.
//
// The load-bearing assertions are bit-identity ones: a supervised run
// that loses a rank mid-flight must finish with exactly the bytes of an
// uninterrupted run — restore + deterministic replay, not approximate
// recovery — for single-level Castro (Sedov), subcycled AMR Castro
// (across a regrid, exercising the remake-on-restore path), Maestro
// (whose multigrid warm start phi is part of the trajectory), and the
// WD-collision acceptance problem, on every backend.

#include "castro/castro_amr.hpp"
#include "castro/sedov.hpp"
#include "castro/wd_collision.hpp"
#include "comm/ledger.hpp"
#include "core/executor.hpp"
#include "core/fault.hpp"
#include "core/parallel_for.hpp"
#include "maestro/maestro.hpp"
#include "mesh/comm_hooks.hpp"
#include "mesh/plotfile.hpp"
#include "resilience/adapters.hpp"
#include "resilience/campaign.hpp"
#include "resilience/checkpointer.hpp"
#include "resilience/supervisor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

using namespace exa;
using namespace exa::resilience;

namespace {

struct TmpDir {
    std::string path;
    explicit TmpDir(const std::string& name)
        : path(std::string("/tmp/exastro_resilience_") + name) {
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }
    ~TmpDir() { std::filesystem::remove_all(path); }
};

struct ResilienceTest : ::testing::Test {
    void SetUp() override { fault::disarmAll(); }
    void TearDown() override { fault::disarmAll(); }
};

StepGuardOptions quietGuard() {
    StepGuardOptions g;
    g.enabled = true;
    g.verbose = false;
    return g;
}

// Bit-identity between the valid regions of two same-layout MultiFabs:
// staged buffers are the exact bytes, so memcmp is the comparison (== on
// doubles would excuse nothing, but also reject legitimate NaN equality).
::testing::AssertionResult bitIdentical(const MultiFab& a, const MultiFab& b,
                                        const Geometry& g) {
    const StagedLevel sa = stageLevel(a, g);
    const StagedLevel sb = stageLevel(b, g);
    if (sa.fabs.size() != sb.fabs.size()) {
        return ::testing::AssertionFailure() << "fab count differs";
    }
    for (std::size_t f = 0; f < sa.fabs.size(); ++f) {
        if (sa.fabs[f].data.size() != sb.fabs[f].data.size()) {
            return ::testing::AssertionFailure()
                   << "fab " << f << " size differs";
        }
        if (std::memcmp(sa.fabs[f].data.data(), sb.fabs[f].data.data(),
                        sa.fabs[f].data.size() * sizeof(Real)) != 0) {
            return ::testing::AssertionFailure()
                   << "fab " << f << " bytes differ";
        }
    }
    return ::testing::AssertionSuccess();
}

std::unique_ptr<castro::Castro> makeBlast(int nranks = 4) {
    static ReactionNetwork net = makeIgnitionSimple();
    castro::SedovParams p;
    p.ncell = 16;
    p.max_grid_size = 8;
    p.nranks = nranks;
    p.guard = quietGuard();
    return p.build(net);
}

// A small MultiFab with a deterministic per-zone fingerprint.
MultiFab makeFingerprint(const Geometry& geom, int nranks, int ncomp = 2) {
    BoxArray ba(geom.domain());
    ba.maxSize(8);
    DistributionMapping dm(ba, nranks);
    MultiFab mf(ba, dm, ncomp, 0);
    for (std::size_t f = 0; f < mf.size(); ++f) {
        auto a = mf.array(static_cast<int>(f));
        ParallelFor(mf.box(static_cast<int>(f)), ncomp,
                    [=](int i, int j, int k, int n) {
                        a(i, j, k, n) = std::sin(0.7 * i + 1.3 * j) +
                                        0.01 * k + 100.0 * n;
                    });
    }
    return mf;
}

} // namespace

// ---------------------------------------------------------------------
// Daly scheduling
// ---------------------------------------------------------------------

TEST_F(ResilienceTest, DalyIntervalMatchesFirstOrderOptimum) {
    // delta = 0.02 s staged per checkpoint, tau = 0.01 s per step -> 2
    // steps of cost; MTBF 100 steps -> sqrt(2 * 2 * 100) = 20 steps.
    EXPECT_EQ(dalyIntervalSteps(0.02, 0.01, 100.0, 1, 64), 20);
    // Clamping at both ends.
    EXPECT_EQ(dalyIntervalSteps(10.0, 0.01, 1.0e6, 1, 64), 64);
    EXPECT_EQ(dalyIntervalSteps(1.0e-9, 0.01, 4.0, 2, 64), 2);
    // Degenerate inputs fall back to the maximum interval.
    EXPECT_EQ(dalyIntervalSteps(0.02, 0.0, 100.0, 1, 64), 64);
    EXPECT_EQ(dalyIntervalSteps(0.02, 0.01, 0.0, 1, 64), 64);
}

TEST_F(ResilienceTest, DalyIntervalTracksArmedFaultRate) {
    // MTBF implied by an armed rank-failure probability: 1/p steps.
    fault::Spec s;
    s.probability = 0.01; // MTBF 100 steps
    fault::arm(fault::Site::RankFailure, s);

    TmpDir tmp("daly");
    CheckpointerOptions opt;
    opt.dir = tmp.path;
    opt.async = false;
    AsyncCheckpointer ckpt(opt);
    for (int i = 0; i < 20; ++i) ckpt.noteStepSeconds(0.01);
    // Staging EMA is still unmeasured -> eager minimum interval.
    EXPECT_EQ(ckpt.intervalSteps(), opt.min_interval);
}

// ---------------------------------------------------------------------
// Checkpointer: staging round trip, slot alternation, async drain
// ---------------------------------------------------------------------

TEST_F(ResilienceTest, StagedPlotfileRoundTripsPerFab) {
    Box dom({0, 0, 0}, {15, 15, 15});
    Geometry geom(dom, {0, 0, 0}, {1, 1, 1}, IntVect{0, 0, 0});
    MultiFab mf = makeFingerprint(geom, 2);

    TmpDir tmp("roundtrip");
    const std::string dir = tmp.path + "/pf";
    const StagedLevel staged = stageLevel(mf, geom);
    ASSERT_GT(staged.fabs.size(), 1u);
    const std::int64_t bytes = writeStagedPlotfile(
        dir, {staged}, {"a", "b"}, 0.5, 7);
    EXPECT_GT(bytes, 0);

    // Per-fab localized reads reproduce the staged payloads exactly.
    const PlotfileHeader h = readPlotfileHeader(dir);
    EXPECT_EQ(h.step, 7);
    for (std::size_t f = 0; f < staged.fabs.size(); ++f) {
        const StagedFab sf = readPlotfileFab(dir, h, 0, static_cast<int>(f));
        ASSERT_EQ(sf.data.size(), staged.fabs[f].data.size());
        EXPECT_EQ(std::memcmp(sf.data.data(), staged.fabs[f].data.data(),
                              sf.data.size() * sizeof(Real)),
                  0);
    }

    // applyStagedFab restores a zeroed copy bit-identically.
    MultiFab zero(mf.boxArray(), mf.distributionMap(), mf.nComp(), 0);
    zero.setVal(0.0);
    for (std::size_t f = 0; f < staged.fabs.size(); ++f) {
        applyStagedFab(zero, static_cast<int>(f), staged.fabs[f]);
    }
    EXPECT_TRUE(bitIdentical(zero, mf, geom));
}

TEST_F(ResilienceTest, CheckpointerAlternatesSlotsAndRetainsSnapshot) {
    Box dom({0, 0, 0}, {15, 15, 15});
    Geometry geom(dom, {0, 0, 0}, {1, 1, 1}, IntVect{0, 0, 0});
    MultiFab mf = makeFingerprint(geom, 2);

    TmpDir tmp("slots");
    CheckpointerOptions opt;
    opt.dir = tmp.path;
    opt.async = false;
    AsyncCheckpointer ckpt(opt);

    CheckpointField f;
    f.mf = &mf;
    f.geom = geom;
    f.name = "state";

    ASSERT_TRUE(ckpt.checkpoint({f}, 0.1, 1));
    auto s1 = ckpt.latest();
    ASSERT_TRUE(s1 && s1->valid());
    EXPECT_EQ(s1->dir, tmp.path + "/chk_A");

    mf.setVal(3.25);
    ASSERT_TRUE(ckpt.checkpoint({f}, 0.2, 2));
    auto s2 = ckpt.latest();
    ASSERT_TRUE(s2 && s2->valid());
    EXPECT_EQ(s2->dir, tmp.path + "/chk_B");
    EXPECT_EQ(s2->step, 2);
    EXPECT_EQ(ckpt.checkpointsWritten(), 2);

    // Both slots live on disk simultaneously, each internally consistent.
    EXPECT_TRUE(verifyPlotfile(tmp.path + "/chk_A/state").empty());
    EXPECT_TRUE(verifyPlotfile(tmp.path + "/chk_B/state").empty());

    // The retained in-memory snapshot holds the staged bytes of its era:
    // s1 predates the setVal, s2 is all 3.25.
    EXPECT_NE(s1->fields[0].level.fabs[0].data[0], 3.25);
    EXPECT_EQ(s2->fields[0].level.fabs[0].data[0], 3.25);
    // Staging-time owners recorded per fab.
    EXPECT_EQ(s2->fields[0].owner.size(), mf.size());
}

TEST_F(ResilienceTest, AsyncDrainCommitsInBackground) {
    Box dom({0, 0, 0}, {15, 15, 15});
    Geometry geom(dom, {0, 0, 0}, {1, 1, 1}, IntVect{0, 0, 0});
    MultiFab mf = makeFingerprint(geom, 2);

    TmpDir tmp("async");
    CheckpointerOptions opt;
    opt.dir = tmp.path;
    opt.async = true;
    AsyncCheckpointer ckpt(opt);

    CheckpointField f;
    f.mf = &mf;
    f.geom = geom;
    f.name = "state";
    ASSERT_TRUE(ckpt.checkpoint({f}, 0.1, 1));
    // The step loop may keep mutating the live state while the drain
    // thread writes the staged copy.
    mf.setVal(-1.0);
    ckpt.flush();
    auto snap = ckpt.latest();
    ASSERT_TRUE(snap && snap->valid());
    EXPECT_TRUE(ckpt.lastError().empty()) << ckpt.lastError();
    EXPECT_EQ(ckpt.checkpointsWritten(), 1);
    EXPECT_TRUE(verifyPlotfile(snap->dir + "/state").empty());
    EXPECT_GT(ckpt.lastStagingSeconds(), 0.0);
    // The committed bytes are the pre-mutation fingerprint.
    const PlotfileHeader h = readPlotfileHeader(snap->dir + "/state");
    const StagedFab sf = readPlotfileFab(snap->dir + "/state", h, 0, 0);
    EXPECT_NE(sf.data[0], -1.0);
}

// ---------------------------------------------------------------------
// Restart hardening: complete damage reports
// ---------------------------------------------------------------------

TEST_F(ResilienceTest, VerifyPlotfileReportsEveryDamagedFab) {
    Box dom({0, 0, 0}, {15, 15, 15});
    Geometry geom(dom, {0, 0, 0}, {1, 1, 1}, IntVect{0, 0, 0});
    MultiFab mf = makeFingerprint(geom, 2);

    TmpDir tmp("damage");
    const std::string dir = tmp.path + "/pf";
    {
        // Flip one bit in the payloads of the first two fabs written.
        fault::Spec s;
        s.start = 0;
        s.count = 2;
        fault::ScopedFault bitflip(fault::Site::CheckpointBitFlip, s);
        writePlotfile(dir, mf, geom, {"a", "b"}, 0.0, 0);
    }

    const std::vector<FabIssue> issues = verifyPlotfile(dir);
    ASSERT_EQ(issues.size(), 2u);
    EXPECT_EQ(issues[0].fab, 0);
    EXPECT_EQ(issues[1].fab, 1);
    EXPECT_NE(issues[0].what.find("corrupted payload"), std::string::npos);

    // readPlotfileLevel names *every* damaged fab in one throw and leaves
    // the destination untouched.
    MultiFab dst(mf.boxArray(), mf.distributionMap(), mf.nComp(), 0);
    dst.setVal(42.0);
    try {
        readPlotfileLevel(dir, 0, dst);
        FAIL() << "corrupted plotfile was accepted";
    } catch (const std::exception& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("2 damaged fab(s)"), std::string::npos) << what;
        EXPECT_NE(what.find("fab 0"), std::string::npos) << what;
        EXPECT_NE(what.find("fab 1"), std::string::npos) << what;
    }
    auto a = dst.const_array(0);
    EXPECT_EQ(a(0, 0, 0, 0), 42.0);
}

// ---------------------------------------------------------------------
// comm-message-drop semantics
// ---------------------------------------------------------------------

TEST_F(ResilienceTest, CommMessageDropSkipsOffRankDeliveryOnly) {
    Box dom({0, 0, 0}, {15, 15, 15});
    Geometry geom(dom, {0, 0, 0}, {1, 1, 1}, IntVect{0, 0, 0});
    BoxArray ba(dom);
    ba.maxSize(8);
    const int nranks = 2;
    DistributionMapping src_dm(ba, nranks);
    // Destination mapping with every fab on the *other* rank, so every
    // copy-plan item is an off-rank message.
    std::vector<int> flipped(ba.size());
    for (std::size_t i = 0; i < ba.size(); ++i) flipped[i] = 1 - src_dm[i];
    DistributionMapping dst_dm(std::move(flipped), nranks);

    MultiFab src(ba, src_dm, 1, 0);
    src.setVal(7.0);
    MultiFab dst(ba, dst_dm, 1, 0);

    {
        fault::Spec s;
        s.count = 0; // unbounded: drop every message in the window
        fault::ScopedFault drop(fault::Site::CommMessageDrop, s);
        dst.setVal(0.0);
        dst.ParallelCopy(src);
        auto a = dst.const_array(0);
        EXPECT_EQ(a(0, 0, 0, 0), 0.0) << "dropped message was delivered";
    }
    // Disarmed: the same copy delivers.
    dst.setVal(0.0);
    dst.ParallelCopy(src);
    auto a = dst.const_array(0);
    EXPECT_EQ(a(0, 0, 0, 0), 7.0);
}

// ---------------------------------------------------------------------
// Supervised recovery: bit-identity across drivers and backends
// ---------------------------------------------------------------------

namespace {

SupervisorOptions sedovSupervisor(const std::string& dir, int nranks) {
    SupervisorOptions opt;
    opt.checkpoint.dir = dir;
    opt.checkpoint.interval_hint = 3;
    opt.nranks = nranks;
    return opt;
}

} // namespace

TEST_F(ResilienceTest, SedovRankFailureRecoversBitIdentically) {
    const int nsteps = 8;
    auto baseline = makeBlast();
    for (int i = 0; i < nsteps; ++i) baseline->step(baseline->estimateDt());

    TmpDir tmp("sedov");
    auto survivor = makeBlast();
    ResilienceSupervisor sup(makeSupervisedDriver(*survivor),
                             sedovSupervisor(tmp.path, 4));
    {
        // Heartbeat hit 4 = after the 5th step.
        fault::Spec s;
        s.start = 4;
        fault::ScopedFault kill(fault::Site::RankFailure, s);
        sup.runSteps(nsteps);
    }

    const SupervisorReport& r = sup.report();
    EXPECT_EQ(r.ranks_failed, 1);
    EXPECT_EQ(r.ranks_recovered, 1);
    EXPECT_GT(r.replay_steps, 0);
    EXPECT_EQ(r.localized_restores, 1);
    EXPECT_EQ(r.full_rollbacks, 0);
    EXPECT_GT(r.checkpoints_written, 0);
    EXPECT_EQ(sup.ranksAlive(), 3);
    EXPECT_EQ(survivor->stepCount(), nsteps);
    EXPECT_EQ(r.steps_run, nsteps + r.replay_steps);

    EXPECT_TRUE(bitIdentical(survivor->state(), baseline->state(),
                             baseline->geom()));
    EXPECT_EQ(survivor->time(), baseline->time());
    // The report renders, including the StepGuard block.
    EXPECT_NE(sup.summary().find("step-guard"), std::string::npos);
}

TEST_F(ResilienceTest, SedovSurvivesRepeatedFailures) {
    const int nsteps = 10;
    auto baseline = makeBlast();
    for (int i = 0; i < nsteps; ++i) baseline->step(baseline->estimateDt());

    TmpDir tmp("sedov_multi");
    auto survivor = makeBlast();
    ResilienceSupervisor sup(makeSupervisedDriver(*survivor),
                             sedovSupervisor(tmp.path, 4));
    {
        // Three kills: heartbeat hits 3, 7, 11 (replayed steps also
        // beat). The window is [start, start+count) strided, so count
        // spans the whole range, not the number of fires.
        fault::Spec s;
        s.start = 3;
        s.count = 9;
        s.stride = 4;
        fault::ScopedFault kill(fault::Site::RankFailure, s);
        sup.runSteps(nsteps);
    }
    EXPECT_EQ(sup.report().ranks_recovered, 3);
    EXPECT_EQ(sup.ranksAlive(), 1);
    EXPECT_TRUE(bitIdentical(survivor->state(), baseline->state(),
                             baseline->geom()));
}

TEST_F(ResilienceTest, CorruptNewestSlotFallsBackToFullRollback) {
    const int nsteps = 7;
    auto baseline = makeBlast();
    for (int i = 0; i < nsteps; ++i) baseline->step(baseline->estimateDt());

    TmpDir tmp("fallback");
    auto survivor = makeBlast();
    SupervisorOptions opt = sedovSupervisor(tmp.path, 4);
    opt.checkpoint.interval_hint = 2;
    opt.checkpoint.async = false; // deterministic per-fab write ordering
    ResilienceSupervisor sup(makeSupervisedDriver(*survivor), opt);
    {
        // Checkpoints land at steps 0/2/4/... with 8 fabs each; corrupt
        // every fab of the third checkpoint (step 4, newest at the kill),
        // so the localized restore hits a CRC failure and must roll back
        // to the other slot (step 2) and replay from there.
        fault::Spec flip;
        flip.start = 16;
        flip.count = 8;
        fault::arm(fault::Site::CheckpointBitFlip, flip);
        fault::Spec s;
        s.start = 4; // kill after the 5th step
        fault::ScopedFault kill(fault::Site::RankFailure, s);
        sup.runSteps(nsteps);
        fault::disarm(fault::Site::CheckpointBitFlip);
    }
    const SupervisorReport& r = sup.report();
    EXPECT_EQ(r.ranks_recovered, 1);
    EXPECT_EQ(r.localized_restores, 0);
    EXPECT_EQ(r.full_rollbacks, 1);
    EXPECT_EQ(r.replay_steps, 3); // killed after step 5, rolled back to 2
    EXPECT_TRUE(bitIdentical(survivor->state(), baseline->state(),
                             baseline->geom()));
}

TEST_F(ResilienceTest, UnrecoverableWhenEveryCheckpointIsCorrupt) {
    TmpDir tmp("nockpt");
    auto survivor = makeBlast();
    SupervisorOptions opt = sedovSupervisor(tmp.path, 4);
    opt.checkpoint.interval_hint = 64; // only the step-0 checkpoint exists
    ResilienceSupervisor sup(makeSupervisedDriver(*survivor), opt);
    // Flip a bit in every fab of every checkpoint write: when the kill
    // arrives, the victim's disk fabs fail CRC, and the only other slot
    // does not exist — recovery has no usable source and must throw
    // rather than continue from poisoned state.
    fault::Spec flip;
    flip.start = 0;
    flip.count = 0; // unbounded window
    fault::arm(fault::Site::CheckpointBitFlip, flip);
    fault::Spec s;
    s.start = 0;
    fault::arm(fault::Site::RankFailure, s);
    EXPECT_THROW(sup.runSteps(4), std::runtime_error);
    EXPECT_EQ(sup.report().ranks_recovered, 0);
    EXPECT_EQ(sup.report().ranks_failed, 1);
}

class ResilienceBackends : public ::testing::TestWithParam<Backend> {
    void SetUp() override { fault::disarmAll(); }
    void TearDown() override { fault::disarmAll(); }
};

TEST_P(ResilienceBackends, MaestroRankFailureRecoversBitIdentically) {
    ScopedBackend backend(GetParam());
    auto net = makeIgnitionSimple();
    maestro::BubbleParams p;
    p.ncell = 16;
    p.max_grid_size = 8;
    p.nranks = 4;
    p.guard = quietGuard();
    const int nsteps = 6;

    auto baseline = p.build(net);
    for (int i = 0; i < nsteps; ++i) baseline->step(baseline->estimateDt());

    TmpDir tmp(std::string("maestro_") +
               ::testing::UnitTest::GetInstance()->current_test_info()->name());
    auto survivor = p.build(net);
    ResilienceSupervisor sup(makeSupervisedDriver(*survivor),
                             sedovSupervisor(tmp.path, 4));
    {
        fault::Spec s;
        s.start = 3;
        fault::ScopedFault kill(fault::Site::RankFailure, s);
        sup.runSteps(nsteps);
    }
    EXPECT_EQ(sup.report().ranks_recovered, 1);
    // phi is persisted and restored: the projection warm start — part of
    // the bit-identical trajectory — survives the failure.
    EXPECT_TRUE(bitIdentical(survivor->state(), baseline->state(),
                             baseline->geom()));
    EXPECT_TRUE(
        bitIdentical(survivor->phi(), baseline->phi(), baseline->geom()));
    EXPECT_EQ(survivor->time(), baseline->time());
}

namespace {

struct AmrBlast {
    std::unique_ptr<castro::CastroAmr> amr;
    ReactionNetwork net = makeIgnitionSimple();
};

// The expanding Sedov-like blast of the AMR subcycle suite: tags follow
// the hot region, so regrids genuinely move the fine level between steps
// — the recovery path has to cope with layouts that changed since the
// checkpoint was taken.
AmrBlast makeAmrBlast(int ncell = 16) {
    AmrBlast b;
    Box dom({0, 0, 0}, {ncell - 1, ncell - 1, ncell - 1});
    Geometry geom(dom, {0, 0, 0}, {1, 1, 1}, IntVect{0, 0, 0});
    AmrInfo info;
    info.max_level = 1;
    info.ref_ratio = 2;
    info.max_grid_size = 8;
    info.blocking_factor = 4;
    info.n_error_buf = 1;
    info.nranks = 4;

    castro::CastroOptions opt;
    opt.bc = DomainBC::allOutflow();
    opt.cfl = 0.3;
    opt.guard = quietGuard();

    const Real r_init = 2.0 / ncell;
    const Real e_in =
        1.0 / ((4.0 / 3.0) * constants::pi * r_init * r_init * r_init);
    castro::Castro::InitFn init = [=](Real x, Real y, Real z) {
        castro::Castro::InitialZone zn;
        zn.rho = 1.0;
        const Real r = std::sqrt((x - 0.5) * (x - 0.5) + (y - 0.5) * (y - 0.5) +
                                 (z - 0.5) * (z - 0.5));
        zn.p = r <= r_init ? 0.4 * e_in : 1.0e-5;
        zn.X = {1.0, 0.0};
        return zn;
    };
    castro::CastroAmr::TagFn tag = [](int /*lev*/, const Geometry&,
                                      const MultiFab& s, MultiFab& tags) {
        const Real thresh = 1.0e-8;
        for (std::size_t f = 0; f < tags.size(); ++f) {
            auto t = tags.array(static_cast<int>(f));
            auto u = s.const_array(static_cast<int>(f));
            ParallelFor(tags.box(static_cast<int>(f)), [=](int i, int j, int k) {
                if (u(i, j, k, castro::StateLayout::UTEMP) > thresh)
                    t(i, j, k) = 1.0;
            });
        }
    };

    Eos eos{GammaLawEos{1.4}};
    b.amr = std::make_unique<castro::CastroAmr>(geom, info, b.net, eos, opt,
                                                std::move(init), std::move(tag));
    b.amr->init();
    return b;
}

} // namespace

TEST_P(ResilienceBackends, AmrRankFailureRecoversAcrossRegrid) {
    ScopedBackend backend(GetParam());
    const int nsteps = 6;

    AmrBlast baseline = makeAmrBlast();
    for (int i = 0; i < nsteps; ++i)
        baseline.amr->step(baseline.amr->estimateDt());

    TmpDir tmp(std::string("amr_") +
               ::testing::UnitTest::GetInstance()->current_test_info()->name());
    AmrBlast survivor = makeAmrBlast();
    SupervisorOptions opt = sedovSupervisor(tmp.path, 4);
    // Checkpoint at step 0 only (next due at 6): the kill at step 5 sees
    // live grids that have been regridded since, forcing the
    // remake-on-restore path before replay.
    opt.checkpoint.interval_hint = 6;
    ResilienceSupervisor sup(makeSupervisedDriver(*survivor.amr), opt);
    {
        fault::Spec s;
        s.start = 4;
        fault::ScopedFault kill(fault::Site::RankFailure, s);
        sup.runSteps(nsteps);
    }
    EXPECT_EQ(sup.report().ranks_recovered, 1);
    EXPECT_GT(sup.report().replay_steps, 0);

    ASSERT_EQ(survivor.amr->finestLevel(), baseline.amr->finestLevel());
    for (int lev = 0; lev <= baseline.amr->finestLevel(); ++lev) {
        EXPECT_TRUE(bitIdentical(survivor.amr->state(lev),
                                 baseline.amr->state(lev),
                                 baseline.amr->geom(lev)))
            << "level " << lev;
    }
    EXPECT_EQ(survivor.amr->time(), baseline.amr->time());
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ResilienceBackends,
                         ::testing::Values(Backend::Serial, Backend::OpenMP,
                                           Backend::SimGpu, Backend::Debug),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                             switch (info.param) {
                             case Backend::Serial: return "Serial";
                             case Backend::OpenMP: return "OpenMP";
                             case Backend::SimGpu: return "SimGpu";
                             case Backend::Debug: return "Debug";
                             default: return "Unknown";
                             }
                         });

// The acceptance problem: a seeded mid-run rank failure in the
// WD-collision setup recovers bit-identically.
TEST_F(ResilienceTest, WdCollisionRankFailureRecoversBitIdentically) {
    auto net = makeIso7();
    castro::WdCollisionParams p;
    p.ncell = 16;
    p.max_grid_size = 8;
    p.nranks = 4;
    const int nsteps = 5;

    castro::WdCollision baseline = p.build(net);
    for (int i = 0; i < nsteps; ++i)
        baseline.castro->step(baseline.castro->estimateDt());

    TmpDir tmp("wd");
    castro::WdCollision survivor = p.build(net);
    ResilienceSupervisor sup(makeSupervisedDriver(*survivor.castro),
                             sedovSupervisor(tmp.path, 4));
    {
        fault::Spec s;
        s.start = 2;
        fault::ScopedFault kill(fault::Site::RankFailure, s);
        sup.runSteps(nsteps);
    }
    EXPECT_EQ(sup.report().ranks_recovered, 1);
    EXPECT_TRUE(bitIdentical(survivor.castro->state(),
                             baseline.castro->state(),
                             baseline.castro->geom()));
    EXPECT_EQ(survivor.castro->time(), baseline.castro->time());
}

// ---------------------------------------------------------------------
// CommLedger resilience counters
// ---------------------------------------------------------------------

TEST_F(ResilienceTest, LedgerCountsCheckpointsAndRecoveries) {
    CommLedger ledger;
    ledger.attach();

    TmpDir tmp("ledger");
    auto survivor = makeBlast();
    ResilienceSupervisor sup(makeSupervisedDriver(*survivor),
                             sedovSupervisor(tmp.path, 4));
    {
        fault::Spec s;
        s.start = 3;
        fault::ScopedFault kill(fault::Site::RankFailure, s);
        sup.runSteps(6);
    }
    ledger.detach();

    const SupervisorReport& r = sup.report();
    EXPECT_EQ(ledger.checkpointsWritten(), r.checkpoints_written);
    EXPECT_EQ(ledger.checkpointBytes(), r.checkpoint_bytes);
    EXPECT_EQ(ledger.ranksRecovered(), 1);
    EXPECT_EQ(ledger.recoveryReplaySteps(), r.replay_steps);
    EXPECT_GT(ledger.recoveryBytes(), 0);
}

// ---------------------------------------------------------------------
// Fault-campaign harness
// ---------------------------------------------------------------------

TEST_F(ResilienceTest, CampaignSurvivesMultiFaultSchedule) {
    TmpDir tmp("campaign");
    CampaignOptions opt;
    opt.nseeds = 2;
    opt.steps = 8;
    opt.workdir = tmp.path;
    opt.supervisor.nranks = 4;
    opt.supervisor.checkpoint.interval_hint = 2;
    opt.supervisor.checkpoint.async = false;

    // Three concurrent fault classes: rank deaths (window: kills at
    // heartbeat hits 3 and 7), sparse halo corruption (StepGuard retries
    // it), and a bit flip landing in one checkpoint payload (recovery
    // falls back to the other slot if it needs that fab).
    CampaignFaultSpec kill;
    kill.site = fault::Site::RankFailure;
    kill.spec.start = 3;
    kill.spec.count = 5; // window [3, 8) strided by 4: fires at hits 3, 7
    kill.spec.stride = 4;
    CampaignFaultSpec halo;
    halo.site = fault::Site::HaloPayloadCorrupt;
    halo.spec.probability = 0.002;
    CampaignFaultSpec flip;
    flip.site = fault::Site::CheckpointBitFlip;
    flip.spec.start = 40;
    flip.spec.count = 1;
    opt.faults = {kill, halo, flip};

    const CampaignReport report = runCampaign(
        [](int /*run*/) {
            SupervisedRun r;
            auto blast = std::make_shared<
                std::unique_ptr<castro::Castro>>(makeBlast());
            r.owner = blast;
            r.driver = makeSupervisedDriver(**blast);
            return r;
        },
        opt);

    ASSERT_EQ(report.runs.size(), 2u);
    EXPECT_EQ(report.survivalRate(), 1.0) << report.summary();
    EXPECT_EQ(report.totalRanksRecovered(), 4);
    EXPECT_GT(report.totalReplaySteps(), 0);
    for (const CampaignRunResult& r : report.runs) {
        EXPECT_TRUE(r.survived) << r.error;
        EXPECT_GT(r.checkpoints_written, 0);
        EXPECT_GT(r.wall_seconds, 0.0);
    }
    EXPECT_NE(report.summary().find("survival 100%"), std::string::npos);
    // The harness disarms everything on exit.
    EXPECT_FALSE(fault::anyArmed());
}
