#include "core/parallel_for.hpp"
#include "mesh/interp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace exa;

namespace {

MultiFab makeLevel(const Box& domain, int max_size, int ncomp, int ngrow) {
    BoxArray ba(domain);
    ba.maxSize(max_size);
    DistributionMapping dm(ba, 2);
    MultiFab mf(ba, dm, ncomp, ngrow);
    mf.setVal(0.0);
    return mf;
}

void fillLinear(MultiFab& mf, Real a, Real b, Real c, Real d, int ng) {
    for (std::size_t i = 0; i < mf.size(); ++i) {
        auto arr = mf.array(static_cast<int>(i));
        const Box gb = grow(mf.box(static_cast<int>(i)), ng);
        for (int k = gb.smallEnd(2); k <= gb.bigEnd(2); ++k)
            for (int j = gb.smallEnd(1); j <= gb.bigEnd(1); ++j)
                for (int ii = gb.smallEnd(0); ii <= gb.bigEnd(0); ++ii)
                    arr(ii, j, k, 0) = a + b * (ii + 0.5) + c * (j + 0.5) + d * (k + 0.5);
    }
}

} // namespace

TEST(PcInterp, InjectsCoarseValue) {
    Box cbox({0, 0, 0}, {3, 3, 3});
    Box fbox = refine(cbox, 2);
    std::vector<Real> cdata(cbox.numPts()), fdata(fbox.numPts(), 0.0);
    Array4<Real> c(cdata.data(), cbox, 1);
    Array4<Real> f(fdata.data(), fbox, 1);
    for (int k = 0; k < 4; ++k)
        for (int j = 0; j < 4; ++j)
            for (int i = 0; i < 4; ++i) c(i, j, k) = i + 10 * j + 100 * k;
    pcInterp(f, Array4<const Real>(cdata.data(), cbox, 1), fbox, 2, 0, 0, 1);
    EXPECT_DOUBLE_EQ(f(0, 0, 0), 0.0);
    EXPECT_DOUBLE_EQ(f(1, 1, 1), 0.0);
    EXPECT_DOUBLE_EQ(f(2, 0, 0), 1.0);
    EXPECT_DOUBLE_EQ(f(7, 7, 7), 3 + 30 + 300);
}

TEST(ConslinInterp, ExactForLinearData) {
    // A linear function of zone-center position (in coarse units) must be
    // reproduced exactly by limited-linear interpolation in the interior.
    Box cbox({0, 0, 0}, {7, 7, 7});
    Box fbox = refine(Box({1, 1, 1}, {6, 6, 6}), 2); // interior (stencil needs nbrs)
    std::vector<Real> cdata(cbox.numPts()), fdata(refine(cbox, 2).numPts(), 0.0);
    Array4<Real> c(cdata.data(), cbox, 1);
    Array4<Real> f(fdata.data(), refine(cbox, 2), 1);
    const Real a = 3.0, bx = 1.5, by = -2.0, bz = 0.5;
    for (int k = 0; k < 8; ++k)
        for (int j = 0; j < 8; ++j)
            for (int i = 0; i < 8; ++i)
                c(i, j, k) = a + bx * (i + 0.5) + by * (j + 0.5) + bz * (k + 0.5);
    conslinInterp(f, Array4<const Real>(cdata.data(), cbox, 1), fbox, 2, 0, 0, 1);
    for (int k = fbox.smallEnd(2); k <= fbox.bigEnd(2); ++k)
        for (int j = fbox.smallEnd(1); j <= fbox.bigEnd(1); ++j)
            for (int i = fbox.smallEnd(0); i <= fbox.bigEnd(0); ++i) {
                // Fine-zone center in coarse index units:
                const Real xc = (i + 0.5) / 2.0;
                const Real yc = (j + 0.5) / 2.0;
                const Real zc = (k + 0.5) / 2.0;
                ASSERT_NEAR(f(i, j, k), a + bx * xc + by * yc + bz * zc, 1e-12);
            }
}

class ConslinConservation : public ::testing::TestWithParam<int> {};

TEST_P(ConslinConservation, FineAverageEqualsCoarse) {
    const int ratio = GetParam();
    Box cbox({0, 0, 0}, {7, 7, 7});
    Box fbox = refine(cbox, ratio);
    std::vector<Real> cdata(cbox.numPts()), fdata(fbox.numPts());
    Array4<Real> c(cdata.data(), cbox, 1);
    Array4<Real> f(fdata.data(), fbox, 1);
    // Nonlinear data so limiting engages.
    for (int k = 0; k < 8; ++k)
        for (int j = 0; j < 8; ++j)
            for (int i = 0; i < 8; ++i)
                c(i, j, k) = std::sin(1.7 * i) * std::cos(0.9 * j) + 0.3 * k * k;
    conslinInterp(f, Array4<const Real>(cdata.data(), cbox, 1), fbox, ratio, 0, 0, 1);
    // Conservation: fine average over each interior coarse zone == coarse.
    for (int k = 1; k < 7; ++k)
        for (int j = 1; j < 7; ++j)
            for (int i = 1; i < 7; ++i) {
                Real s = 0;
                for (int kk = 0; kk < ratio; ++kk)
                    for (int jj = 0; jj < ratio; ++jj)
                        for (int ii = 0; ii < ratio; ++ii)
                            s += f(i * ratio + ii, j * ratio + jj, k * ratio + kk);
                ASSERT_NEAR(s / (ratio * ratio * ratio), c(i, j, k), 1e-12);
            }
}

INSTANTIATE_TEST_SUITE_P(Ratios, ConslinConservation, ::testing::Values(2, 4));

TEST(AverageDown, ExactMeanOfChildren) {
    Box cdom({0, 0, 0}, {7, 7, 7});
    MultiFab crse = makeLevel(cdom, 4, 1, 0);
    MultiFab fine = makeLevel(refine(cdom, 2), 8, 1, 0);
    for (std::size_t i = 0; i < fine.size(); ++i) {
        auto a = fine.array(static_cast<int>(i));
        ParallelFor(fine.box(static_cast<int>(i)),
                    [=](int ii, int j, int k) { a(ii, j, k) = ii + 2.0 * j + 3.0 * k; });
    }
    averageDown(crse, fine, 2, 0, 0, 1);
    for (std::size_t i = 0; i < crse.size(); ++i) {
        auto c = crse.const_array(static_cast<int>(i));
        const Box& vb = crse.box(static_cast<int>(i));
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                for (int ii = vb.smallEnd(0); ii <= vb.bigEnd(0); ++ii) {
                    // mean of ii' in {2ii, 2ii+1} etc: (2ii+0.5) + 2(2j+0.5) + 3(2k+0.5)
                    const Real expect = (2 * ii + 0.5) + 2.0 * (2 * j + 0.5) + 3.0 * (2 * k + 0.5);
                    ASSERT_NEAR(c(ii, j, k), expect, 1e-12);
                }
    }
}

TEST(AverageDown, ConservesSum) {
    Box cdom({0, 0, 0}, {7, 7, 7});
    MultiFab crse = makeLevel(cdom, 4, 1, 0);
    MultiFab fine = makeLevel(refine(cdom, 4), 16, 1, 0);
    for (std::size_t i = 0; i < fine.size(); ++i) {
        auto a = fine.array(static_cast<int>(i));
        ParallelFor(fine.box(static_cast<int>(i)), [=](int ii, int j, int k) {
            a(ii, j, k) = std::sin(0.3 * ii * j + 0.1 * k);
        });
    }
    averageDown(crse, fine, 4, 0, 0, 1);
    // Total integral (sum * cell volume) matches: crse volume = 64 * fine.
    EXPECT_NEAR(crse.sum(0) * 64.0, fine.sum(0), 1e-8);
}

TEST(FillPatchTwoLevels, CopiesFineWhereAvailableInterpolatesElsewhere) {
    Box cdom({0, 0, 0}, {15, 15, 15});
    Geometry cgeom(cdom, {0, 0, 0}, {1, 1, 1}); // non-periodic: test data is linear
    Geometry fgeom = cgeom.refined(2);

    MultiFab crse = makeLevel(cdom, 8, 1, 1);
    fillLinear(crse, 1.0, 2.0, 0.5, -1.0, 1);

    // Fine level covers only the center region.
    BoxArray fba(refine(Box({4, 4, 4}, {11, 11, 11}), 2));
    fba.maxSize(8);
    DistributionMapping fdm(fba, 2);
    MultiFab fine_src(fba, fdm, 1, 0);
    // Fill fine with the SAME linear function in fine zone units: the
    // coarse linear f(x) = 1 + 2x + 0.5y - z with x in coarse units maps
    // to fine index if as x = (if+0.5)/2.
    for (std::size_t i = 0; i < fine_src.size(); ++i) {
        auto a = fine_src.array(static_cast<int>(i));
        ParallelFor(fine_src.box(static_cast<int>(i)), [=](int ii, int j, int k) {
            a(ii, j, k) = 1.0 + 2.0 * (ii + 0.5) / 2 + 0.5 * (j + 0.5) / 2 - (k + 0.5) / 2;
        });
    }

    // Destination: fine grids slightly larger than the fine source.
    BoxArray dba(refine(Box({2, 2, 2}, {13, 13, 13}), 2));
    dba.maxSize(12);
    DistributionMapping ddm(dba, 2);
    MultiFab dst(dba, ddm, 1, 2);
    dst.setVal(0.0);

    fillPatchTwoLevels(dst, fine_src, crse, cgeom, fgeom, 2, 0, 0, 1, 2);

    // Everywhere (valid + ghosts inside the fine domain) must equal the
    // linear function — fine where covered, interpolated (exact for
    // linear) elsewhere.
    for (std::size_t i = 0; i < dst.size(); ++i) {
        auto a = dst.const_array(static_cast<int>(i));
        const Box gb = grow(dst.box(static_cast<int>(i)), 2);
        for (int k = gb.smallEnd(2); k <= gb.bigEnd(2); ++k)
            for (int j = gb.smallEnd(1); j <= gb.bigEnd(1); ++j)
                for (int ii = gb.smallEnd(0); ii <= gb.bigEnd(0); ++ii) {
                    const Real expect =
                        1.0 + 2.0 * (ii + 0.5) / 2 + 0.5 * (j + 0.5) / 2 - (k + 0.5) / 2;
                    ASSERT_NEAR(a(ii, j, k), expect, 1e-11)
                        << ii << ' ' << j << ' ' << k;
                }
    }
}
