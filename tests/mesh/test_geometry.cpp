#include "mesh/geometry.hpp"

#include <gtest/gtest.h>

using namespace exa;

TEST(Periodicity, ShiftsEnumerateImages) {
    Periodicity none;
    EXPECT_EQ(none.shifts().size(), 1u);
    EXPECT_FALSE(none.isAnyPeriodic());

    Periodicity all(IntVect{16, 16, 16});
    EXPECT_EQ(all.shifts().size(), 27u);
    EXPECT_TRUE(all.isPeriodic(2));

    Periodicity xonly(IntVect{16, 0, 0});
    auto s = xonly.shifts();
    EXPECT_EQ(s.size(), 3u);
    for (auto& sh : s) {
        EXPECT_EQ(sh.y, 0);
        EXPECT_EQ(sh.z, 0);
    }
}

TEST(Geometry, CellSizesAndCenters) {
    Geometry g(Box({0, 0, 0}, {31, 63, 15}), {0.0, 0.0, 0.0}, {1.0, 2.0, 1.0});
    EXPECT_DOUBLE_EQ(g.cellSize(0), 1.0 / 32);
    EXPECT_DOUBLE_EQ(g.cellSize(1), 2.0 / 64);
    EXPECT_DOUBLE_EQ(g.cellSize(2), 1.0 / 16);
    EXPECT_DOUBLE_EQ(g.cellCenter(0, 0), 0.5 / 32);
    EXPECT_DOUBLE_EQ(g.cellCenter(0, 31), 1.0 - 0.5 / 32);
    EXPECT_DOUBLE_EQ(g.cellLo(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(g.cellLo(0, 32), 1.0);
    EXPECT_DOUBLE_EQ(g.cellVolume(), (1.0 / 32) * (2.0 / 64) * (1.0 / 16));
}

TEST(Geometry, PeriodicFlagsBecomeDomainPeriods) {
    Geometry g(Box({0, 0, 0}, {15, 15, 15}), {0, 0, 0}, {1, 1, 1}, IntVect{1, 0, 1});
    EXPECT_TRUE(g.isPeriodic(0));
    EXPECT_FALSE(g.isPeriodic(1));
    EXPECT_TRUE(g.isPeriodic(2));
    EXPECT_EQ(g.periodicity().period(0), 16);
}

TEST(Geometry, RefinedKeepsPhysicalExtent) {
    Geometry g(Box({0, 0, 0}, {15, 15, 15}), {0, 0, 0}, {1, 1, 1}, IntVect{1, 1, 1});
    Geometry f = g.refined(4);
    EXPECT_EQ(f.domain(), Box({0, 0, 0}, {63, 63, 63}));
    EXPECT_DOUBLE_EQ(f.cellSize(0), g.cellSize(0) / 4);
    EXPECT_DOUBLE_EQ(f.probHi(0), 1.0);
    EXPECT_TRUE(f.isPeriodic(0));
    EXPECT_EQ(f.periodicity().period(0), 64);
    Geometry c = f.coarsened(4);
    EXPECT_EQ(c.domain(), g.domain());
}
