#include "mesh/box_array.hpp"
#include "mesh/distribution.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

using namespace exa;

TEST(BoxArray, MaxSizeTilesDomain) {
    BoxArray ba(Box({0, 0, 0}, {63, 63, 63}));
    ba.maxSize(32);
    EXPECT_EQ(ba.size(), 8u);
    EXPECT_TRUE(ba.isDisjoint());
    EXPECT_EQ(ba.numPts(), 64LL * 64 * 64);
    EXPECT_EQ(ba.minimalBox(), Box({0, 0, 0}, {63, 63, 63}));
}

TEST(BoxArray, ContainsAndIntersections) {
    BoxArray ba(Box({0, 0, 0}, {31, 31, 31}));
    ba.maxSize(16);
    EXPECT_TRUE(ba.contains(Box({5, 5, 5}, {20, 20, 20})));
    EXPECT_FALSE(ba.contains(Box({30, 30, 30}, {33, 33, 33})));
    auto is = ba.intersections(Box({14, 14, 14}, {17, 17, 17}));
    EXPECT_EQ(is.size(), 8u); // straddles all 8 octants
    std::int64_t pts = 0;
    for (auto& [i, b] : is) pts += b.numPts();
    EXPECT_EQ(pts, 64);
}

TEST(BoxArray, RefineCoarsenRoundTrip) {
    BoxArray ba(Box({0, 0, 0}, {31, 31, 31}));
    ba.maxSize(16);
    BoxArray fine = ba;
    fine.refine(4);
    EXPECT_EQ(fine.numPts(), ba.numPts() * 64);
    BoxArray back = fine;
    back.coarsen(4);
    EXPECT_EQ(back, ba);
}

TEST(DistributionMapping, RoundRobinCycles) {
    BoxArray ba(Box({0, 0, 0}, {63, 63, 63}));
    ba.maxSize(16); // 64 boxes
    DistributionMapping dm(ba, 6, DistributionMapping::Strategy::RoundRobin);
    auto per = dm.boxesPerRank();
    // 64 boxes over 6 ranks: 4 ranks get 11, 2 get 10.
    EXPECT_EQ(std::accumulate(per.begin(), per.end(), 0), 64);
    EXPECT_EQ(*std::max_element(per.begin(), per.end()), 11);
    EXPECT_EQ(*std::min_element(per.begin(), per.end()), 10);
}

TEST(DistributionMapping, PaperLoadBalanceQuantization) {
    // The paper's fiducial Sedov case: 64 boxes of 64^3 over 6 GPUs/node.
    // 6 does not divide 64, so imbalance is 11/|64/6| = 1.03125.
    BoxArray ba(Box({0, 0, 0}, {255, 255, 255}));
    ba.maxSize(64);
    ASSERT_EQ(ba.size(), 64u);
    DistributionMapping dm(ba, 6, DistributionMapping::Strategy::Knapsack);
    const double imb = DistributionMapping::imbalance(ba, dm);
    EXPECT_NEAR(imb, 11.0 * 6.0 / 64.0, 1e-12);
}

TEST(DistributionMapping, SfcBalancesEqualBoxes) {
    BoxArray ba(Box({0, 0, 0}, {63, 63, 63}));
    ba.maxSize(16); // 64 equal boxes
    DistributionMapping dm(ba, 8, DistributionMapping::Strategy::Sfc);
    auto zones = dm.zonesPerRank(ba);
    for (auto z : zones) EXPECT_EQ(z, ba.numPts() / 8);
}

TEST(DistributionMapping, SfcIsLocalityPreserving) {
    // Adjacent boxes along the Morton curve should mostly share a rank;
    // count rank changes between spatially adjacent boxes and require
    // fewer changes than round-robin (which alternates every box).
    BoxArray ba(Box({0, 0, 0}, {63, 63, 63}));
    ba.maxSize(16);
    DistributionMapping sfc(ba, 8, DistributionMapping::Strategy::Sfc);
    DistributionMapping rr(ba, 8, DistributionMapping::Strategy::RoundRobin);
    auto count_offrank_neighbors = [&](const DistributionMapping& dm) {
        int cross = 0;
        for (std::size_t i = 0; i < ba.size(); ++i) {
            for (std::size_t j = 0; j < ba.size(); ++j) {
                if (i != j && grow(ba[i], 1).intersects(ba[j]) && dm[i] != dm[j]) ++cross;
            }
        }
        return cross;
    };
    EXPECT_LT(count_offrank_neighbors(sfc), count_offrank_neighbors(rr));
}

TEST(DistributionMapping, KnapsackBalancesUnequalBoxes) {
    std::vector<Box> boxes = {Box({0, 0, 0}, {63, 63, 63}),   // 262144
                              Box({64, 0, 0}, {95, 31, 31}),  // 32768
                              Box({64, 32, 0}, {95, 63, 31}), // 32768
                              Box({64, 0, 32}, {95, 31, 63}), // 32768
                              Box({64, 32, 32}, {95, 63, 63})};
    BoxArray ba(boxes);
    DistributionMapping dm(ba, 2, DistributionMapping::Strategy::Knapsack);
    auto zones = dm.zonesPerRank(ba);
    // Big box alone on one rank; four small ones on the other.
    EXPECT_EQ(std::max(zones[0], zones[1]), 262144);
    EXPECT_EQ(std::min(zones[0], zones[1]), 4 * 32768);
}

TEST(Morton, OrdersByLocality) {
    EXPECT_LT(mortonCode(0, 0, 0), mortonCode(1, 0, 0));
    EXPECT_LT(mortonCode(1, 1, 1), mortonCode(2, 0, 0));
    EXPECT_EQ(mortonCode(0, 0, 0), 0u);
    // Interleaving: x bit 0 -> code bit 0, y bit 0 -> bit 1, z bit 0 -> bit 2.
    EXPECT_EQ(mortonCode(1, 0, 0), 1u);
    EXPECT_EQ(mortonCode(0, 1, 0), 2u);
    EXPECT_EQ(mortonCode(0, 0, 1), 4u);
}
