#include "mesh/flux_register.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace exa;

namespace {

// Register for one fine box (fine index space) over ratio 2.
FluxRegister makeReg(const Box& fine_box, int ncomp = 2, int nranks = 2) {
    BoxArray fba(fine_box);
    DistributionMapping fdm(fba, nranks);
    FluxRegister reg;
    reg.define(fba, fdm, 2, ncomp);
    return reg;
}

} // namespace

TEST(FluxRegister, DefineBuildsCoarsenedFaceBoxes) {
    // Fine box {4..11}^3 at ratio 2 -> coarse image {2..5}^3; the d=0
    // register fab covers its x faces {2..6} x {2..5} x {2..5}.
    FluxRegister reg = makeReg(Box({4, 4, 4}, {11, 11, 11}));
    ASSERT_TRUE(reg.isDefined());
    EXPECT_EQ(reg.ratio(), 2);
    ASSERT_EQ(reg.crseBoxArray().size(), 1u);
    EXPECT_EQ(reg.crseBoxArray()[0], Box({2, 2, 2}, {5, 5, 5}));
    EXPECT_EQ(reg.mf(0).box(0), Box({2, 2, 2}, {6, 5, 5}));
    EXPECT_EQ(reg.mf(1).box(0), Box({2, 2, 2}, {5, 6, 5}));
    EXPECT_EQ(reg.mf(2).box(0), Box({2, 2, 2}, {5, 5, 6}));
    EXPECT_EQ(reg.absSum(), 0.0);
}

TEST(FluxRegister, CoincidentFluxesCancelExactly) {
    // When the area-averaged fine flux equals the coarse flux on every
    // interface face (both uniform here), the accumulated mismatch is
    // exactly zero: -F + (0.5 + 0.5) * <F> = 0 in floating point too.
    const int nc = 2;
    const Box fine_box({4, 4, 4}, {11, 11, 11});
    FluxRegister reg = makeReg(fine_box, nc);

    BoxArray cba(Box({0, 0, 0}, {7, 7, 7}));
    cba.maxSize(4);
    DistributionMapping cdm(cba, 2);
    auto crse_flux = makeFluxFabs(cba, cdm, nc);
    for (auto& mf : crse_flux) mf.setVal(3.0);

    BoxArray fba(fine_box);
    DistributionMapping fdm(fba, 2);
    auto fine_flux = makeFluxFabs(fba, fdm, nc);
    for (auto& mf : fine_flux) mf.setVal(3.0);

    reg.CrseAdd(crse_flux, -1.0);      // one coarse step, stages folded
    reg.FineAdd(fine_flux, 0.5);       // substep 1
    reg.FineAdd(fine_flux, 0.5);       // substep 2
    EXPECT_EQ(reg.absSum(), 0.0);
}

TEST(FluxRegister, CrseAddCountsSharedCoarseFacesOnce) {
    // Adjacent coarse boxes both carry their shared face in their flux
    // fabs; the register must gather it once, not add both copies.
    const int nc = 1;
    FluxRegister reg = makeReg(Box({4, 4, 4}, {11, 11, 11}), nc);

    BoxArray cba(Box({0, 0, 0}, {7, 7, 7}));
    cba.maxSize(4); // boxes split at x=4: shared face plane x=4
    DistributionMapping cdm(cba, 2);
    auto crse_flux = makeFluxFabs(cba, cdm, nc);
    for (auto& mf : crse_flux) mf.setVal(5.0);

    reg.CrseAdd(crse_flux, 1.0);
    // Every register face (x faces {2..6}, incl. the shared plane x=4)
    // holds exactly 5.0.
    auto a = reg.mf(0).const_array(0);
    const Box& fb = reg.mf(0).box(0);
    for (int k = fb.smallEnd(2); k <= fb.bigEnd(2); ++k)
        for (int j = fb.smallEnd(1); j <= fb.bigEnd(1); ++j)
            for (int i = fb.smallEnd(0); i <= fb.bigEnd(0); ++i)
                ASSERT_EQ(a(i, j, k, 0), 5.0) << i << ' ' << j << ' ' << k;
}

TEST(FluxRegister, FineAddAreaAveragesFineFaces) {
    // Fine x-fluxes varying with j: the register face gets the mean of
    // the ratio^2 fine faces under it, times the scale.
    const int nc = 1;
    const Box fine_box({0, 0, 0}, {3, 3, 3});
    FluxRegister reg = makeReg(fine_box, nc);

    BoxArray fba(fine_box);
    DistributionMapping fdm(fba, 2);
    auto fine_flux = makeFluxFabs(fba, fdm, nc);
    for (auto& mf : fine_flux) mf.setVal(0.0);
    {
        auto f = fine_flux[0].array(0);
        const Box& fb = fine_flux[0].box(0);
        for (int k = fb.smallEnd(2); k <= fb.bigEnd(2); ++k)
            for (int j = fb.smallEnd(1); j <= fb.bigEnd(1); ++j)
                for (int i = fb.smallEnd(0); i <= fb.bigEnd(0); ++i)
                    f(i, j, k, 0) = 1.0 + j;
    }
    reg.FineAdd(fine_flux, 2.0);
    // Coarse face (0,0,0): fine faces j in {0,1} -> values {1,2}, mean
    // 1.5; scaled by 2.0 -> 3. Coarse face (0,1,0): j in {2,3} -> 3.5*2.
    auto r = reg.mf(0).const_array(0);
    EXPECT_DOUBLE_EQ(r(0, 0, 0, 0), 3.0);
    EXPECT_DOUBLE_EQ(r(0, 1, 0, 0), 7.0);
    EXPECT_DOUBLE_EQ(r(1, 0, 0, 0), 3.0);
    // y-register untouched by the x-flux fill.
    EXPECT_EQ(reg.mf(1).const_array(0)(0, 0, 0, 0), 0.0);
}

TEST(FluxRegister, RefluxCorrectsOnlyUncoveredNeighborZones) {
    // Constant register payload c: the coarse zone just outside each fine
    // face gains -+ c/dx; covered zones and zones off the transverse
    // extent stay untouched.
    const int nc = 1;
    const Real c = 2.0;
    FluxRegister reg = makeReg(Box({4, 4, 4}, {11, 11, 11}), nc);
    reg.setVal(c);

    const Box dom({0, 0, 0}, {7, 7, 7});
    Geometry geom(dom, {0, 0, 0}, {1, 1, 1});
    BoxArray cba(dom);
    cba.maxSize(4);
    DistributionMapping cdm(cba, 2);
    MultiFab crse(cba, cdm, nc, 0);
    crse.setVal(0.0);

    reg.Reflux(crse, geom);

    const Real dxinv = 8.0;
    auto value = [&](int i, int j, int k) {
        for (std::size_t f = 0; f < crse.size(); ++f) {
            if (crse.box(static_cast<int>(f)).contains(i, j, k)) {
                return crse.const_array(static_cast<int>(f))(i, j, k, 0);
            }
        }
        ADD_FAILURE() << "zone not found";
        return 0.0;
    };
    // Low-side x neighbor: -c/dx; high-side: +c/dx.
    EXPECT_DOUBLE_EQ(value(1, 3, 3), -c * dxinv);
    EXPECT_DOUBLE_EQ(value(6, 3, 3), c * dxinv);
    // Low-side y neighbor.
    EXPECT_DOUBLE_EQ(value(3, 1, 3), -c * dxinv);
    // Covered zones and zones outside the transverse extent: untouched.
    EXPECT_EQ(value(3, 3, 3), 0.0);
    EXPECT_EQ(value(1, 1, 3), 0.0);
    EXPECT_EQ(value(0, 3, 3), 0.0);
}

TEST(FluxRegister, RefluxHonorsDomainEdges) {
    // A fine box hugging the x-low domain edge: the outside zone of its
    // low face is beyond the domain. Non-periodic geometry drops the
    // correction; periodic geometry wraps it to the far side.
    const int nc = 1;
    const Real c = 4.0;
    const Box dom({0, 0, 0}, {7, 7, 7});
    BoxArray cba(dom);
    cba.maxSize(4);
    DistributionMapping cdm(cba, 2);

    for (const bool periodic : {false, true}) {
        FluxRegister reg = makeReg(Box({0, 0, 0}, {7, 7, 7}), nc); // crse {0..3}^3
        reg.setVal(c);
        Geometry geom(dom, {0, 0, 0}, {1, 1, 1},
                      periodic ? IntVect{1, 1, 1} : IntVect{0, 0, 0});
        MultiFab crse(cba, cdm, nc, 0);
        crse.setVal(0.0);
        reg.Reflux(crse, geom);

        const Real dxinv = 8.0;
        auto value = [&](int i, int j, int k) {
            for (std::size_t f = 0; f < crse.size(); ++f) {
                if (crse.box(static_cast<int>(f)).contains(i, j, k)) {
                    return crse.const_array(static_cast<int>(f))(i, j, k, 0);
                }
            }
            return std::numeric_limits<Real>::quiet_NaN();
        };
        // Interior high-side face at x=4 corrects zone 4 either way.
        EXPECT_DOUBLE_EQ(value(4, 2, 2), c * dxinv) << "periodic=" << periodic;
        // The low face at x=0: its outside zone is x=-1 -> wraps to 7.
        // One wrapped contribution per dimension lands on each far-edge
        // plane; probe a zone touched only by the x wrap.
        if (periodic) {
            EXPECT_DOUBLE_EQ(value(7, 2, 2), -c * dxinv);
        } else {
            EXPECT_EQ(value(7, 2, 2), 0.0);
        }
    }
}

TEST(FluxRegister, SetValAndClearResetState) {
    FluxRegister reg = makeReg(Box({0, 0, 0}, {3, 3, 3}), 2);
    reg.setVal(1.5);
    EXPECT_GT(reg.absSum(), 0.0);
    reg.setVal(0.0);
    EXPECT_EQ(reg.absSum(), 0.0);
    reg.clear();
    EXPECT_FALSE(reg.isDefined());
}
