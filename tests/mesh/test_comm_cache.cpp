// Tests for the communication-metadata caching layer: the BoxArray spatial
// hash index, stable BoxArray/DistributionMapping ids, and the CopierCache
// memoizing FillBoundary / ParallelCopy / averageDown plans. The cached
// paths must be bit-identical to uncached execution on every backend.
#include "core/executor.hpp"
#include "mesh/comm_hooks.hpp"
#include "mesh/copier_cache.hpp"
#include "mesh/interp.hpp"
#include "mesh/multifab.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

using namespace exa;

namespace {

// Deterministic xorshift RNG (tests must not depend on seeding).
struct Rng {
    std::uint64_t s;
    explicit Rng(std::uint64_t seed) : s(seed ? seed : 1) {}
    std::uint64_t next() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return s;
    }
    int range(int lo, int hi) { // inclusive
        return lo + static_cast<int>(next() % static_cast<std::uint64_t>(hi - lo + 1));
    }
};

Box randomBox(Rng& rng, int span, int max_side) {
    IntVect lo{rng.range(-span, span), rng.range(-span, span), rng.range(-span, span)};
    IntVect hi{lo.x + rng.range(0, max_side - 1), lo.y + rng.range(0, max_side - 1),
               lo.z + rng.range(0, max_side - 1)};
    return Box(lo, hi);
}

// Reference linear-scan intersections (what the pre-index code did).
std::vector<std::pair<int, Box>> linearIntersections(const BoxArray& ba,
                                                     const Box& bx) {
    std::vector<std::pair<int, Box>> out;
    if (!bx.ok()) return out;
    for (std::size_t i = 0; i < ba.size(); ++i) {
        const Box isect = ba[i] & bx;
        if (isect.ok()) out.emplace_back(static_cast<int>(i), isect);
    }
    return out;
}

// Reference containment: every zone of bx lies in some box of ba.
bool zonewiseContains(const BoxArray& ba, const Box& bx) {
    for (int k = bx.smallEnd(2); k <= bx.bigEnd(2); ++k)
        for (int j = bx.smallEnd(1); j <= bx.bigEnd(1); ++j)
            for (int i = bx.smallEnd(0); i <= bx.bigEnd(0); ++i) {
                bool covered = false;
                for (std::size_t b = 0; b < ba.size(); ++b) {
                    if (ba[b].contains(i, j, k)) {
                        covered = true;
                        break;
                    }
                }
                if (!covered) return false;
            }
    return true;
}

Real f(int i, int j, int k, int n) {
    return std::sin(0.37 * i + 0.11 * j) + 0.21 * k + 1.7 * n;
}

MultiFab makeFilled(const BoxArray& ba, const DistributionMapping& dm, int ncomp,
                    int ngrow) {
    MultiFab mf(ba, dm, ncomp, ngrow);
    mf.setVal(-4.0e30); // poison ghosts so un-filled zones still compare
    for (std::size_t b = 0; b < mf.size(); ++b) {
        auto a = mf.array(static_cast<int>(b));
        const Box& vb = mf.box(static_cast<int>(b));
        for (int n = 0; n < ncomp; ++n)
            for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
                for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                    for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i)
                        a(i, j, k, n) = f(i, j, k, n);
    }
    return mf;
}

// Bitwise equality of two MultiFabs over valid + ghost zones.
void expectIdentical(const MultiFab& a, const MultiFab& b) {
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.nComp(), b.nComp());
    ASSERT_EQ(a.nGrow(), b.nGrow());
    for (std::size_t fb = 0; fb < a.size(); ++fb) {
        auto aa = a.const_array(static_cast<int>(fb));
        auto bb = b.const_array(static_cast<int>(fb));
        const Box gb = a.fabbox(static_cast<int>(fb));
        for (int n = 0; n < a.nComp(); ++n)
            for (int k = gb.smallEnd(2); k <= gb.bigEnd(2); ++k)
                for (int j = gb.smallEnd(1); j <= gb.bigEnd(1); ++j)
                    for (int i = gb.smallEnd(0); i <= gb.bigEnd(0); ++i)
                        ASSERT_EQ(aa(i, j, k, n), bb(i, j, k, n))
                            << "fab " << fb << " @ " << i << ' ' << j << ' ' << k
                            << " comp " << n;
    }
}

// Toggle memoization off for a scope (the plan-based execution path stays).
class ScopedCacheDisabled {
public:
    ScopedCacheDisabled() : m_saved(CopierCache::instance().enabled()) {
        CopierCache::instance().setEnabled(false);
    }
    ~ScopedCacheDisabled() { CopierCache::instance().setEnabled(m_saved); }

private:
    bool m_saved;
};

struct Msg {
    int src, dst;
    std::int64_t bytes;
    std::string tag;
    bool operator==(const Msg&) const = default;
};

std::vector<Msg> recordMessages(const std::function<void()>& body) {
    std::vector<Msg> out;
    CommHooks::setMessageHook([&](const MessageRecord& r) {
        out.push_back({r.src_rank, r.dst_rank, r.bytes, r.tag});
    });
    body();
    CommHooks::clearMessageHook();
    return out;
}

} // namespace

// --- spatial hash index --------------------------------------------------

TEST(BoxArrayIndex, HashedIntersectionsMatchLinearScan) {
    Rng rng(0x9e3779b97f4a7c15ULL);
    for (int trial = 0; trial < 40; ++trial) {
        std::vector<Box> boxes;
        const int nbox = rng.range(1, 60);
        for (int b = 0; b < nbox; ++b) {
            // Mixed sizes and positions; overlap is allowed and frequent.
            boxes.push_back(randomBox(rng, 40, rng.range(1, 12)));
        }
        BoxArray ba(boxes);
        for (int q = 0; q < 25; ++q) {
            const Box query = randomBox(rng, 48, 14);
            const auto hashed = ba.intersections(query);
            const auto linear = linearIntersections(ba, query);
            ASSERT_EQ(hashed, linear) << "trial " << trial << " query " << q;
            EXPECT_EQ(ba.intersects(query), !linear.empty());
        }
    }
}

TEST(BoxArrayIndex, ContainsMatchesZonewiseReferenceUnderOverlap) {
    Rng rng(0xdeadbeefULL);
    for (int trial = 0; trial < 30; ++trial) {
        std::vector<Box> boxes;
        const int nbox = rng.range(1, 20);
        for (int b = 0; b < nbox; ++b) boxes.push_back(randomBox(rng, 8, 6));
        BoxArray ba(boxes);
        for (int q = 0; q < 10; ++q) {
            const Box query = randomBox(rng, 9, 5); // small: zonewise ref is cheap
            ASSERT_EQ(ba.contains(query), zonewiseContains(ba, query))
                << "trial " << trial << " query " << query.smallEnd().x;
        }
    }
}

TEST(BoxArrayIndex, ContainsIsCorrectAfterJoin) {
    // Regression: contains() used to compare the *sum* of intersection
    // volumes against the query volume, which double-counts overlapped
    // zones. After join() the array overlaps and the shortcut lies.
    BoxArray a(Box({0, 0, 0}, {1, 0, 0}));
    BoxArray b(Box({1, 0, 0}, {2, 0, 0}));
    a.join(b); // union covers x in [0,2]; zone x=1 is covered twice
    const Box q({0, 0, 0}, {3, 0, 0});
    // Old shortcut: 2 + 2 = 4 zones == q.numPts() => wrongly "contained".
    EXPECT_FALSE(a.contains(q));
    EXPECT_TRUE(a.contains(Box({0, 0, 0}, {2, 0, 0})));
    EXPECT_FALSE(a.isDisjoint());
}

TEST(BoxArrayIndex, DisjointAndRoundTripSemanticsPreserved) {
    BoxArray ba(Box({0, 0, 0}, {31, 31, 31}));
    ba.maxSize(8);
    EXPECT_TRUE(ba.isDisjoint());
    EXPECT_TRUE(ba.contains(Box({3, 3, 3}, {28, 28, 28})));
    EXPECT_FALSE(ba.contains(Box({3, 3, 3}, {32, 28, 28})));
    BoxArray back = ba;
    back.refine(2);
    back.coarsen(2);
    EXPECT_EQ(back, ba); // content equality despite different ids
}

// --- stable identities ---------------------------------------------------

TEST(CopierIds, CopiesShareMutationsMint) {
    BoxArray ba(Box({0, 0, 0}, {15, 15, 15}));
    EXPECT_NE(ba.id(), 0u);
    BoxArray copy = ba;
    EXPECT_EQ(copy.id(), ba.id());
    copy.maxSize(8);
    EXPECT_NE(copy.id(), ba.id());
    const std::uint64_t after_chop = copy.id();
    copy.refine(2);
    EXPECT_NE(copy.id(), after_chop);
    BoxArray empty;
    EXPECT_EQ(empty.id(), 0u);

    DistributionMapping dm(ba, 4);
    EXPECT_NE(dm.id(), 0u);
    DistributionMapping dm_copy = dm;
    EXPECT_EQ(dm_copy.id(), dm.id());
    DistributionMapping dm2(ba, 4);
    EXPECT_NE(dm2.id(), dm.id()); // same content, fresh identity
    EXPECT_EQ(dm2, dm);           // content comparison still holds
    DistributionMapping dm_default;
    EXPECT_EQ(dm_default.id(), 0u);
}

// --- cache behavior ------------------------------------------------------

TEST(CopierCacheTest, HitsMissesAndInvalidationByIdentity) {
    auto& cache = CopierCache::instance();
    cache.resetStats();

    BoxArray ba(Box({0, 0, 0}, {31, 31, 31}));
    ba.maxSize(16);
    DistributionMapping dm(ba, 4);
    const Periodicity per(IntVect{32, 32, 32});

    const auto p1 = cache.fillBoundary(ba, dm, 2, per);
    auto s = cache.stats();
    EXPECT_EQ(s.hits, 0u);
    EXPECT_EQ(s.misses, 1u);

    const auto p2 = cache.fillBoundary(ba, dm, 2, per);
    s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(p1.get(), p2.get()); // the very same plan object

    // Different ghost width: a different key.
    (void)cache.fillBoundary(ba, dm, 1, per);
    s = cache.stats();
    EXPECT_EQ(s.misses, 2u);

    // A "regrid": mutating the BoxArray mints a fresh id, so the old plan
    // is never consulted again.
    ba.maxSize(8);
    DistributionMapping dm8(ba, 4);
    (void)cache.fillBoundary(ba, dm8, 2, per);
    s = cache.stats();
    EXPECT_EQ(s.misses, 3u);
    EXPECT_GE(s.build_seconds, 0.0);
}

TEST(CopierCacheTest, LruEvictsBeyondCapacity) {
    auto& cache = CopierCache::instance();
    cache.clear();
    cache.resetStats();
    const std::size_t saved_cap = cache.capacity();
    cache.setCapacity(2);

    BoxArray ba(Box({0, 0, 0}, {15, 15, 15}));
    ba.maxSize(8);
    DistributionMapping dm(ba, 2);
    const Periodicity per = Periodicity::nonPeriodic();

    (void)cache.fillBoundary(ba, dm, 1, per); // A
    (void)cache.fillBoundary(ba, dm, 2, per); // B
    (void)cache.fillBoundary(ba, dm, 3, per); // C evicts A (LRU)
    auto s = cache.stats();
    EXPECT_EQ(s.plans, 2u);
    EXPECT_EQ(s.evictions, 1u);

    (void)cache.fillBoundary(ba, dm, 3, per); // C hits
    (void)cache.fillBoundary(ba, dm, 1, per); // A rebuilt: miss
    s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 4u);

    cache.setCapacity(saved_cap);
}

TEST(CopierCacheTest, PlansAreComponentCountIndependent) {
    auto& cache = CopierCache::instance();
    BoxArray ba(Box({0, 0, 0}, {15, 15, 15}));
    ba.maxSize(8);
    DistributionMapping dm(ba, 2);
    MultiFab a(ba, dm, 1, 2), b(ba, dm, 5, 2);
    a.setVal(1.0);
    b.setVal(2.0);
    cache.resetStats();
    a.FillBoundary();
    b.FillBoundary(); // same layout, different ncomp: one plan serves both
    const auto s = cache.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 1u);
}

// --- bit-identity of cached execution ------------------------------------

class CommCacheBackends : public ::testing::TestWithParam<Backend> {};

TEST_P(CommCacheBackends, FillBoundaryCachedMatchesUncached) {
    ScopedBackend backend(GetParam());
    for (bool periodic : {false, true}) {
        const int nx = 16;
        BoxArray ba(Box({0, 0, 0}, {nx - 1, nx - 1, nx - 1}));
        ba.maxSize(8);
        DistributionMapping dm(ba, 4);
        const Periodicity per = periodic ? Periodicity(IntVect{nx, nx, nx})
                                         : Periodicity::nonPeriodic();

        MultiFab cached = makeFilled(ba, dm, 2, 2);
        cached.FillBoundary(0, cached.nComp(), per); // cold: builds and caches the plan
        cached.FillBoundary(0, cached.nComp(), per); // warm: replays the cached plan

        MultiFab reference = makeFilled(ba, dm, 2, 2);
        {
            ScopedCacheDisabled off;
            reference.FillBoundary(0, reference.nComp(), per);
            reference.FillBoundary(0, reference.nComp(), per);
        }
        expectIdentical(cached, reference);
    }
}

TEST_P(CommCacheBackends, ParallelCopyCachedMatchesUncached) {
    ScopedBackend backend(GetParam());
    const int nx = 16;
    BoxArray sba(Box({0, 0, 0}, {nx - 1, nx - 1, nx - 1}));
    sba.maxSize(8);
    DistributionMapping sdm(sba, 4);
    MultiFab src = makeFilled(sba, sdm, 2, 0);

    BoxArray dba(Box({0, 0, 0}, {nx - 1, nx - 1, nx - 1}));
    dba.maxSize(4); // different decomposition
    DistributionMapping ddm(dba, 3);
    const Periodicity per(IntVect{nx, nx, nx});

    MultiFab cached(dba, ddm, 2, 1);
    cached.setVal(0.0);
    cached.ParallelCopy(src, 0, 0, 2, 1, per);
    cached.ParallelCopy(src, 0, 0, 2, 1, per); // warm

    MultiFab reference(dba, ddm, 2, 1);
    reference.setVal(0.0);
    {
        ScopedCacheDisabled off;
        reference.ParallelCopy(src, 0, 0, 2, 1, per);
        reference.ParallelCopy(src, 0, 0, 2, 1, per);
    }
    expectIdentical(cached, reference);
}

TEST_P(CommCacheBackends, FillPatchAndAverageDownCachedMatchUncached) {
    ScopedBackend backend(GetParam());
    const Box cdom({0, 0, 0}, {15, 15, 15});
    Geometry cgeom(cdom, {0, 0, 0}, {1, 1, 1}, IntVect{1, 1, 1});
    Geometry fgeom = cgeom.refined(2);

    BoxArray cba(cdom);
    cba.maxSize(8);
    DistributionMapping cdm(cba, 2);
    MultiFab crse = makeFilled(cba, cdm, 1, 1);
    crse.FillBoundary(0, crse.nComp(), cgeom.periodicity());

    BoxArray fba(refine(Box({4, 4, 4}, {11, 11, 11}), 2));
    fba.maxSize(8);
    DistributionMapping fdm(fba, 2);
    MultiFab fine = makeFilled(fba, fdm, 1, 0);

    BoxArray dba(refine(Box({2, 2, 2}, {13, 13, 13}), 2));
    dba.maxSize(12);
    DistributionMapping ddm(dba, 2);

    auto run = [&](MultiFab& dst, MultiFab& avg) {
        dst.setVal(0.0);
        // Twice: the second pass exercises the warm plans.
        fillPatchTwoLevels(dst, fine, crse, cgeom, fgeom, 2, 0, 0, 1, 2);
        fillPatchTwoLevels(dst, fine, crse, cgeom, fgeom, 2, 0, 0, 1, 2);
        avg.setVal(0.0);
        averageDown(avg, fine, 2, 0, 0, 1);
        averageDown(avg, fine, 2, 0, 0, 1);
    };

    MultiFab dst_cached(dba, ddm, 1, 2), avg_cached(cba, cdm, 1, 0);
    run(dst_cached, avg_cached);

    MultiFab dst_ref(dba, ddm, 1, 2), avg_ref(cba, cdm, 1, 0);
    {
        ScopedCacheDisabled off;
        run(dst_ref, avg_ref);
    }
    expectIdentical(dst_cached, dst_ref);
    expectIdentical(avg_cached, avg_ref);
}

INSTANTIATE_TEST_SUITE_P(Backends, CommCacheBackends,
                         ::testing::Values(Backend::Serial, Backend::OpenMP,
                                           Backend::SimGpu, Backend::Debug),
                         [](const auto& info) {
                             return std::string(backendName(info.param));
                         });

// --- message accounting --------------------------------------------------

TEST(CopierCacheTest, WarmFillBoundaryReportsIdenticalMessages) {
    const int nx = 16;
    BoxArray ba(Box({0, 0, 0}, {nx - 1, nx - 1, nx - 1}));
    ba.maxSize(8);
    DistributionMapping dm(ba, 8); // one box per rank: everything off-rank
    const Periodicity per(IntVect{nx, nx, nx});
    MultiFab mf = makeFilled(ba, dm, 3, 2);

    const auto cold = recordMessages([&] { mf.FillBoundary(0, mf.nComp(), per); });
    const auto warm = recordMessages([&] { mf.FillBoundary(0, mf.nComp(), per); });
    std::vector<Msg> uncached;
    {
        ScopedCacheDisabled off;
        uncached = recordMessages([&] { mf.FillBoundary(0, mf.nComp(), per); });
    }
    EXPECT_FALSE(cold.empty());
    EXPECT_EQ(cold, warm);
    EXPECT_EQ(cold, uncached);
}

// --- interior/boundary partitions ----------------------------------------

TEST(CopierCacheTest, InteriorPartitionGeometryAndCaching) {
    auto& cache = CopierCache::instance();
    cache.clear();
    cache.resetStats();

    BoxArray ba(Box({0, 0, 0}, {31, 31, 31}));
    ba.maxSize(8);
    const auto part = cache.interiorPartition(ba, 2);
    ASSERT_EQ(part->fabs.size(), ba.size());
    EXPECT_EQ(part->stencil, 2);

    for (std::size_t i = 0; i < ba.size(); ++i) {
        const Box& vb = ba[i];
        const FabRegions& fr = part->fabs[i];
        // Interior is the valid box shrunk by the stencil width.
        ASSERT_TRUE(fr.interior.ok());
        EXPECT_EQ(fr.interior, grow(vb, -2));
        // Shell boxes are disjoint from the interior and from each other,
        // and interior + shell tile the valid box exactly.
        std::int64_t pts = fr.interior.numPts();
        for (std::size_t a = 0; a < fr.shell.size(); ++a) {
            EXPECT_FALSE((fr.shell[a] & fr.interior).ok());
            EXPECT_TRUE(vb.contains(fr.shell[a]));
            for (std::size_t b = a + 1; b < fr.shell.size(); ++b) {
                EXPECT_FALSE((fr.shell[a] & fr.shell[b]).ok());
            }
            pts += fr.shell[a].numPts();
        }
        EXPECT_EQ(pts, vb.numPts());
    }

    // A stencil as wide as the half-width leaves no interior: the whole
    // valid box is shell.
    const auto thin = cache.interiorPartition(ba, 4);
    for (std::size_t i = 0; i < ba.size(); ++i) {
        EXPECT_FALSE(thin->fabs[i].interior.ok());
        ASSERT_EQ(thin->fabs[i].shell.size(), 1u);
        EXPECT_EQ(thin->fabs[i].shell[0], ba[i]);
    }

    // Caching: same (ba, stencil) is a hit and returns the same plan;
    // a different stencil or a different BoxArray identity misses. The
    // copy-plan hit/miss counters are untouched throughout.
    auto s = cache.stats();
    EXPECT_EQ(s.partition_misses, 2u);
    EXPECT_EQ(s.partition_hits, 0u);
    EXPECT_EQ(s.partitions, 2u);
    const auto again = cache.interiorPartition(ba, 2);
    EXPECT_EQ(again.get(), part.get());
    BoxArray other(Box({0, 0, 0}, {31, 31, 31}));
    other.maxSize(8); // same boxes, fresh identity
    (void)cache.interiorPartition(other, 2);
    s = cache.stats();
    EXPECT_EQ(s.partition_hits, 1u);
    EXPECT_EQ(s.partition_misses, 3u);
    EXPECT_EQ(s.hits, 0u);
    EXPECT_EQ(s.misses, 0u);
}

// --- split-phase accounting (satellite: identical CommHooks counts) ------

TEST(CopierCacheTest, SplitPhaseReportsIdenticalMessages) {
    const int nx = 16;
    BoxArray ba(Box({0, 0, 0}, {nx - 1, nx - 1, nx - 1}));
    ba.maxSize(8);
    DistributionMapping dm(ba, 8); // one box per rank: everything off-rank
    const Periodicity per(IntVect{nx, nx, nx});
    MultiFab mf = makeFilled(ba, dm, 3, 2);

    std::vector<Msg> fused, split;
    {
        comm::ScopedAsyncHalo off(false);
        fused = recordMessages([&] { mf.FillBoundary(0, mf.nComp(), per); });
    }
    {
        comm::ScopedAsyncHalo on(true);
        split = recordMessages([&] {
            comm::HaloHandle h = mf.FillBoundary_nowait(0, mf.nComp(), per);
            h.finish();
        });
    }
    EXPECT_FALSE(fused.empty());
    // Same messages, same order, same byte counts, same tags: the split
    // path delivers through the identical plan items.
    EXPECT_EQ(fused, split);

    MultiFab src = makeFilled(ba, dm, 3, 2);
    std::vector<Msg> pfused, psplit;
    {
        comm::ScopedAsyncHalo off(false);
        pfused = recordMessages([&] { mf.ParallelCopy(src, 0, 0, 3, 1, per); });
    }
    {
        comm::ScopedAsyncHalo on(true);
        psplit = recordMessages([&] {
            comm::HaloHandle h = mf.ParallelCopy_nowait(src, 0, 0, 3, 1, per);
            h.finish();
        });
    }
    EXPECT_FALSE(pfused.empty());
    EXPECT_EQ(pfused, psplit);
}
