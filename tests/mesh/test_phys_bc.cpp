#include "core/parallel_for.hpp"
#include "core/timer.hpp"
#include "mesh/phys_bc.hpp"

#include <gtest/gtest.h>

using namespace exa;

namespace {

MultiFab makeFilled(const Geometry& g, int nc, int ng) {
    BoxArray ba(g.domain());
    ba.maxSize(8);
    DistributionMapping dm(ba, 2);
    MultiFab mf(ba, dm, nc, ng);
    mf.setVal(-1.0e30);
    for (std::size_t b = 0; b < mf.size(); ++b) {
        auto a = mf.array(static_cast<int>(b));
        ParallelFor(mf.box(static_cast<int>(b)), nc, [=](int i, int j, int k, int n) {
            a(i, j, k, n) = i + 100.0 * j + 10000.0 * k + 1.0e6 * n;
        });
    }
    mf.FillBoundary(0, mf.nComp(), g.periodicity());
    return mf;
}

} // namespace

TEST(PhysBC, OutflowExtrapolatesZeroGradient) {
    Geometry g(Box({0, 0, 0}, {7, 7, 7}), {0, 0, 0}, {1, 1, 1});
    MultiFab mf = makeFilled(g, 1, 2);
    fillPhysicalBoundary(mf, g, DomainBC::allOutflow());
    for (std::size_t b = 0; b < mf.size(); ++b) {
        auto a = mf.const_array(static_cast<int>(b));
        const Box& vb = mf.box(static_cast<int>(b));
        if (vb.smallEnd(0) == 0) {
            // ghost at i = -1, -2 copies i = 0.
            EXPECT_DOUBLE_EQ(a(-1, vb.smallEnd(1), vb.smallEnd(2), 0),
                             a(0, vb.smallEnd(1), vb.smallEnd(2), 0));
            EXPECT_DOUBLE_EQ(a(-2, vb.smallEnd(1), vb.smallEnd(2), 0),
                             a(0, vb.smallEnd(1), vb.smallEnd(2), 0));
        }
        if (vb.bigEnd(2) == 7) {
            EXPECT_DOUBLE_EQ(a(vb.smallEnd(0), vb.smallEnd(1), 8, 0),
                             a(vb.smallEnd(0), vb.smallEnd(1), 7, 0));
        }
    }
}

TEST(PhysBC, ReflectMirrorsAndFlipsOddComponents) {
    Geometry g(Box({0, 0, 0}, {7, 7, 7}), {0, 0, 0}, {1, 1, 1});
    MultiFab mf = makeFilled(g, 2, 2);
    DomainBC bc;
    bc.set(0, 0, PhysBC::Reflect);
    bc.set(0, 1, PhysBC::Reflect);
    std::array<std::vector<int>, 3> odd;
    odd[0] = {1}; // component 1 is the normal momentum in x
    fillPhysicalBoundary(mf, g, bc, odd);
    for (std::size_t b = 0; b < mf.size(); ++b) {
        auto a = mf.const_array(static_cast<int>(b));
        const Box& vb = mf.box(static_cast<int>(b));
        if (vb.smallEnd(0) != 0) continue;
        const int j = vb.smallEnd(1), k = vb.smallEnd(2);
        // Even component mirrors: ghost(-1) = interior(0); ghost(-2) = (1).
        EXPECT_DOUBLE_EQ(a(-1, j, k, 0), a(0, j, k, 0));
        EXPECT_DOUBLE_EQ(a(-2, j, k, 0), a(1, j, k, 0));
        // Odd component flips sign.
        EXPECT_DOUBLE_EQ(a(-1, j, k, 1), -a(0, j, k, 1));
        EXPECT_DOUBLE_EQ(a(-2, j, k, 1), -a(1, j, k, 1));
    }
}

TEST(PhysBC, PeriodicFacesAreLeftAlone) {
    Geometry g(Box({0, 0, 0}, {7, 7, 7}), {0, 0, 0}, {1, 1, 1}, IntVect{1, 0, 0});
    MultiFab mf = makeFilled(g, 1, 1);
    DomainBC bc;
    bc.set(0, 0, PhysBC::Periodic);
    bc.set(0, 1, PhysBC::Periodic);
    fillPhysicalBoundary(mf, g, bc);
    // x ghosts were wrapped by FillBoundary (value of i = 7), and the BC
    // fill must not overwrite them with extrapolation.
    for (std::size_t b = 0; b < mf.size(); ++b) {
        auto a = mf.const_array(static_cast<int>(b));
        const Box& vb = mf.box(static_cast<int>(b));
        if (vb.smallEnd(0) != 0) continue;
        EXPECT_DOUBLE_EQ(a(-1, vb.smallEnd(1), vb.smallEnd(2), 0),
                         7.0 + 100.0 * vb.smallEnd(1) + 10000.0 * vb.smallEnd(2));
    }
}

TEST(PhysBC, EdgesComposeAcrossDimensions) {
    // A corner ghost outside two outflow faces must equal the nearest
    // interior corner value (fills compose dimension by dimension).
    Geometry g(Box({0, 0, 0}, {7, 7, 7}), {0, 0, 0}, {1, 1, 1});
    MultiFab mf = makeFilled(g, 1, 2);
    fillPhysicalBoundary(mf, g, DomainBC::allOutflow());
    for (std::size_t b = 0; b < mf.size(); ++b) {
        auto a = mf.const_array(static_cast<int>(b));
        const Box& vb = mf.box(static_cast<int>(b));
        if (vb.smallEnd(0) == 0 && vb.smallEnd(1) == 0) {
            EXPECT_DOUBLE_EQ(a(-1, -1, vb.smallEnd(2), 0),
                             a(0, 0, vb.smallEnd(2), 0));
        }
    }
}

TEST(Timer, RegistryAccumulatesAndReports) {
    auto& reg = TimerRegistry::instance();
    reg.reset();
    {
        TimerRegion t("unit_test_region");
    }
    {
        TimerRegion t("unit_test_region");
    }
    EXPECT_EQ(reg.calls("unit_test_region"), 2u);
    EXPECT_GE(reg.seconds("unit_test_region"), 0.0);
    EXPECT_NE(reg.report().find("unit_test_region"), std::string::npos);
    EXPECT_EQ(reg.calls("never_used"), 0u);
    EXPECT_DOUBLE_EQ(reg.seconds("never_used"), 0.0);
    reg.reset();
    EXPECT_EQ(reg.calls("unit_test_region"), 0u);
}

TEST(Timer, WallTimerAdvances) {
    WallTimer t;
    volatile double x = 0;
    for (int i = 0; i < 100000; ++i) x += i;
    EXPECT_GT(t.seconds(), 0.0);
}
