#include "core/executor.hpp"
#include "mesh/comm_hooks.hpp"
#include "mesh/multifab.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

using namespace exa;

namespace {

// A smooth periodic test function of the global index.
Real f(int i, int j, int k, int n, int nx) {
    auto wrap = [&](int v) { return ((v % nx) + nx) % nx; };
    return std::sin(2 * constants::pi * wrap(i) / nx) +
           std::cos(2 * constants::pi * wrap(j) / nx) * (n + 1) + 0.25 * wrap(k);
}

MultiFab makeFilled(int nx, int max_size, int ncomp, int ngrow, int nranks = 4) {
    BoxArray ba(Box({0, 0, 0}, {nx - 1, nx - 1, nx - 1}));
    ba.maxSize(max_size);
    DistributionMapping dm(ba, nranks);
    MultiFab mf(ba, dm, ncomp, ngrow);
    mf.setVal(-1.0e30); // poison ghosts
    for (std::size_t b = 0; b < mf.size(); ++b) {
        auto a = mf.array(static_cast<int>(b));
        const Box& vb = mf.box(static_cast<int>(b));
        for (int n = 0; n < ncomp; ++n)
            for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
                for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                    for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i)
                        a(i, j, k, n) = f(i, j, k, n, nx);
    }
    return mf;
}

} // namespace

TEST(MultiFab, DefineAllocatesGrownBoxes) {
    BoxArray ba(Box({0, 0, 0}, {31, 31, 31}));
    ba.maxSize(16);
    DistributionMapping dm(ba, 2);
    MultiFab mf(ba, dm, 3, 2);
    EXPECT_EQ(mf.size(), 8u);
    EXPECT_EQ(mf.nComp(), 3);
    EXPECT_EQ(mf.nGrow(), 2);
    EXPECT_EQ(mf.fabbox(0), grow(ba[0], 2));
    EXPECT_EQ(mf.fab(0).box(), grow(ba[0], 2));
}

TEST(MultiFab, FillBoundaryInteriorGhosts) {
    const int nx = 16, ng = 2, nc = 2;
    MultiFab mf = makeFilled(nx, 8, nc, ng);
    mf.FillBoundary(); // non-periodic: only interior ghosts fill
    const Box domain({0, 0, 0}, {nx - 1, nx - 1, nx - 1});
    for (std::size_t b = 0; b < mf.size(); ++b) {
        auto a = mf.const_array(static_cast<int>(b));
        const Box gb = mf.fabbox(static_cast<int>(b));
        for (int n = 0; n < nc; ++n)
            for (int k = gb.smallEnd(2); k <= gb.bigEnd(2); ++k)
                for (int j = gb.smallEnd(1); j <= gb.bigEnd(1); ++j)
                    for (int i = gb.smallEnd(0); i <= gb.bigEnd(0); ++i) {
                        if (domain.contains(i, j, k)) {
                            ASSERT_DOUBLE_EQ(a(i, j, k, n), f(i, j, k, n, nx))
                                << i << ' ' << j << ' ' << k;
                        } else {
                            // outside the domain: still poisoned
                            ASSERT_LT(a(i, j, k, n), -1.0e29);
                        }
                    }
    }
}

TEST(MultiFab, FillBoundaryPeriodicWrapsAllGhosts) {
    const int nx = 16, ng = 2, nc = 1;
    MultiFab mf = makeFilled(nx, 8, nc, ng);
    Periodicity per(IntVect{nx, nx, nx});
    mf.FillBoundary(0, mf.nComp(), per);
    for (std::size_t b = 0; b < mf.size(); ++b) {
        auto a = mf.const_array(static_cast<int>(b));
        const Box gb = mf.fabbox(static_cast<int>(b));
        for (int k = gb.smallEnd(2); k <= gb.bigEnd(2); ++k)
            for (int j = gb.smallEnd(1); j <= gb.bigEnd(1); ++j)
                for (int i = gb.smallEnd(0); i <= gb.bigEnd(0); ++i) {
                    ASSERT_DOUBLE_EQ(a(i, j, k, 0), f(i, j, k, 0, nx))
                        << i << ' ' << j << ' ' << k;
                }
    }
}

TEST(MultiFab, FillBoundaryReportsOffRankMessages) {
    const int nx = 16;
    MultiFab mf = makeFilled(nx, 8, 1, 1, /*nranks=*/8); // one box per rank
    std::int64_t bytes = 0;
    int msgs = 0;
    CommHooks::setMessageHook([&](const MessageRecord& r) {
        ++msgs;
        bytes += r.bytes;
        EXPECT_NE(r.src_rank, r.dst_rank);
        EXPECT_STREQ(r.tag, "fillboundary");
    });
    mf.FillBoundary();
    CommHooks::clearMessageHook();
    // 8 boxes in a 2x2x2 arrangement: every pair of distinct boxes
    // touches (face, edge, or corner) and each box has 7 neighbors.
    EXPECT_EQ(msgs, 8 * 7);
    // Face messages dominate: each of 24 ordered face pairs moves 8*8*1
    // zones; 24 edge pairs move 8; 8 corner pairs... total below.
    const std::int64_t expect_zones = 24 * 64 + 24 * 8 + 8 * 1;
    EXPECT_EQ(bytes, expect_zones * static_cast<std::int64_t>(sizeof(Real)));
}

TEST(MultiFab, ParallelCopyAcrossDifferentBoxArrays) {
    const int nx = 16;
    MultiFab src = makeFilled(nx, 8, 1, 0);
    BoxArray ba2(Box({0, 0, 0}, {nx - 1, nx - 1, nx - 1}));
    ba2.maxSize(4); // different decomposition
    DistributionMapping dm2(ba2, 3);
    MultiFab dst(ba2, dm2, 1, 1);
    dst.setVal(0.0);
    dst.ParallelCopy(src, 0, 0, 1, 0);
    for (std::size_t b = 0; b < dst.size(); ++b) {
        auto a = dst.const_array(static_cast<int>(b));
        const Box& vb = dst.box(static_cast<int>(b));
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i)
                    ASSERT_DOUBLE_EQ(a(i, j, k, 0), f(i, j, k, 0, nx));
    }
}

TEST(MultiFab, ReductionsMatchSingleFabEquivalent) {
    const int nx = 8;
    MultiFab mf = makeFilled(nx, 4, 1, 0);
    MultiFab one = makeFilled(nx, 8, 1, 0); // single box
    EXPECT_NEAR(mf.sum(0), one.sum(0), 1e-10);
    EXPECT_DOUBLE_EQ(mf.max(0), one.max(0));
    EXPECT_DOUBLE_EQ(mf.min(0), one.min(0));
    EXPECT_DOUBLE_EQ(mf.norminf(0), one.norminf(0));
    EXPECT_NEAR(mf.norm2(0), one.norm2(0), 1e-10);
}

TEST(MultiFab, ArithmeticHelpers) {
    BoxArray ba(Box({0, 0, 0}, {7, 7, 7}));
    ba.maxSize(4);
    DistributionMapping dm(ba, 2);
    MultiFab a(ba, dm, 1, 0), b(ba, dm, 1, 0), c(ba, dm, 1, 0);
    a.setVal(2.0);
    b.setVal(3.0);
    c.setVal(0.0);
    MultiFab::LinComb(c, 2.0, a, -1.0, b, 0, 1); // 2*2 - 3 = 1
    EXPECT_DOUBLE_EQ(c.min(0), 1.0);
    EXPECT_DOUBLE_EQ(c.max(0), 1.0);
    c.saxpy(3.0, a, 0, 0, 1); // 1 + 6 = 7
    EXPECT_DOUBLE_EQ(c.sum(0), 7.0 * 512);
    c.plus(1.0, 0, 1);
    c.mult(0.5, 0, 1);
    EXPECT_DOUBLE_EQ(c.max(0), 4.0);
}

TEST(MFIter, UntiledVisitsEachFabOnce) {
    MultiFab mf = makeFilled(16, 8, 1, 0);
    int count = 0;
    for (MFIter mfi(mf); mfi.isValid(); ++mfi) {
        EXPECT_EQ(mfi.tilebox(), mf.box(mfi.index()));
        ++count;
    }
    EXPECT_EQ(count, 8);
}

TEST(MFIter, TiledCoversValidRegionExactly) {
    MultiFab mf = makeFilled(16, 8, 1, 0);
    ExecConfig::setTileSize(IntVect{1024000, 4, 4});
    std::int64_t zones = 0;
    for (MFIter mfi(mf, /*tiling=*/true); mfi.isValid(); ++mfi) {
        zones += mfi.tilebox().numPts();
        EXPECT_TRUE(mf.box(mfi.index()).contains(mfi.tilebox()));
        // Tile shape: full pencil in x, 4x4 in y,z.
        EXPECT_EQ(mfi.tilebox().length(0), 8);
        EXPECT_LE(mfi.tilebox().length(1), 4);
    }
    EXPECT_EQ(zones, 16LL * 16 * 16);
    ExecConfig::setTileSize(IntVect{1024000, 8, 8});
}

TEST(MFIter, GrownTileboxClipsToFab) {
    MultiFab mf = makeFilled(16, 8, 1, 2);
    for (MFIter mfi(mf); mfi.isValid(); ++mfi) {
        EXPECT_EQ(mfi.growntilebox(2), grow(mfi.validbox(), 2));
        EXPECT_EQ(mfi.growntilebox(5), grow(mfi.validbox(), 2)); // clipped
    }
}

TEST(MFIter, RoundRobinsStreams) {
    MultiFab mf = makeFilled(16, 4, 1, 0); // 64 fabs
    ExecConfig::setNumStreams(4);
    std::vector<int> seen;
    for (MFIter mfi(mf); mfi.isValid(); ++mfi) {
        seen.push_back(ExecConfig::currentStream());
    }
    EXPECT_EQ(seen[0], 0);
    EXPECT_EQ(seen[1], 1);
    EXPECT_EQ(seen[4], 0);
}

TEST(MultiFab, EmptyMinMaxAreReductionIdentities) {
    // Regression: min()/max() used to start from +/-1e300 sentinels, so an
    // empty MultiFab reduced to a large-but-finite garbage value that could
    // silently win a fold against real data. The identities are +/-inf.
    MultiFab empty;
    const Real inf = std::numeric_limits<Real>::infinity();
    EXPECT_EQ(empty.min(0), inf);
    EXPECT_EQ(empty.max(0), -inf);
    EXPECT_EQ(empty.sum(0), 0.0);
    EXPECT_EQ(empty.norminf(0), 0.0);
    // Folding an empty MultiFab into a populated reduction is a no-op.
    MultiFab mf = makeFilled(8, 8, 1, 0);
    EXPECT_EQ(std::max(mf.max(0), empty.max(0)), mf.max(0));
    EXPECT_EQ(std::min(mf.min(0), empty.min(0)), mf.min(0));
}
