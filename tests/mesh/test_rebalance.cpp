// Cost-driven load balancing: weighted DistributionMapping builders,
// CostMonitor accounting, the Rebalancer trigger policy, live MultiFab
// migration (bit-exact on every backend, CommLedger-accounted), the
// StepGuard interaction, the migration-payload-corrupt fault site, and
// driver-level on/off equivalence for Castro and Maestro.
#include "castro/react.hpp"
#include "castro/sedov.hpp"
#include "comm/ledger.hpp"
#include "core/debug.hpp"
#include "core/executor.hpp"
#include "core/fault.hpp"
#include "core/timer.hpp"
#include "maestro/maestro.hpp"
#include "mesh/comm_hooks.hpp"
#include "mesh/distribution.hpp"
#include "mesh/multifab.hpp"
#include "mesh/rebalance/rebalancer.hpp"
#include "mesh/step_guard.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <random>
#include <thread>
#include <vector>

using namespace exa;

namespace {

BoxArray makeChoppedBa(int ncell, int max_size) {
    BoxArray ba(Box({0, 0, 0}, {ncell - 1, ncell - 1, ncell - 1}));
    ba.maxSize(max_size);
    return ba;
}

Real pattern(int i, int j, int k, int n) {
    return std::sin(0.37 * i + 0.11 * j) + 0.21 * k + 1.7 * n;
}

// Fill valid + ghost zones with a position-determined pattern so a
// migration that loses or shuffles any zone is visible.
MultiFab makeFilled(const BoxArray& ba, const DistributionMapping& dm, int ncomp,
                    int ngrow) {
    MultiFab mf(ba, dm, ncomp, ngrow);
    for (std::size_t b = 0; b < mf.size(); ++b) {
        auto a = mf.array(static_cast<int>(b));
        const Box gb = mf.fabbox(static_cast<int>(b));
        for (int n = 0; n < ncomp; ++n)
            for (int k = gb.smallEnd(2); k <= gb.bigEnd(2); ++k)
                for (int j = gb.smallEnd(1); j <= gb.bigEnd(1); ++j)
                    for (int i = gb.smallEnd(0); i <= gb.bigEnd(0); ++i)
                        a(i, j, k, n) = pattern(i, j, k, n);
    }
    return mf;
}

// Bitwise equality over valid + ghost zones.
void expectIdentical(const MultiFab& a, const MultiFab& b) {
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.nComp(), b.nComp());
    ASSERT_EQ(a.nGrow(), b.nGrow());
    for (std::size_t fb = 0; fb < a.size(); ++fb) {
        auto aa = a.const_array(static_cast<int>(fb));
        auto bb = b.const_array(static_cast<int>(fb));
        const Box gb = a.fabbox(static_cast<int>(fb));
        for (int n = 0; n < a.nComp(); ++n)
            for (int k = gb.smallEnd(2); k <= gb.bigEnd(2); ++k)
                for (int j = gb.smallEnd(1); j <= gb.bigEnd(1); ++j)
                    for (int i = gb.smallEnd(0); i <= gb.bigEnd(0); ++i)
                        ASSERT_EQ(aa(i, j, k, n), bb(i, j, k, n))
                            << "fab " << fb << " @ " << i << ' ' << j << ' ' << k
                            << " comp " << n;
    }
}

// Per-box weights skewed toward one corner octant of the domain, the
// WD-collision burn-interface shape: every box inside the low octant costs
// `skew` times a uniform baseline. The Morton walk groups that octant onto
// one rank, so the zone-count SFC cold start is maximally wrong here.
std::vector<double> cornerSkewedCost(const BoxArray& ba, double skew) {
    const Box mb = ba.minimalBox();
    const IntVect mid{(mb.smallEnd(0) + mb.bigEnd(0)) / 2,
                      (mb.smallEnd(1) + mb.bigEnd(1)) / 2,
                      (mb.smallEnd(2) + mb.bigEnd(2)) / 2};
    std::vector<double> cost(ba.size());
    for (std::size_t i = 0; i < ba.size(); ++i) {
        const Box& b = ba[i];
        const bool corner = b.bigEnd(0) <= mid.x && b.bigEnd(1) <= mid.y &&
                            b.bigEnd(2) <= mid.z;
        cost[i] = static_cast<double>(b.numPts()) * (corner ? skew : 1.0);
    }
    return cost;
}

} // namespace

// --- weighted DistributionMapping builders -------------------------------

TEST(WeightedMapping, EqualWeightsReproduceZoneCountMapping) {
    const BoxArray ba = makeChoppedBa(32, 8); // 64 boxes
    std::vector<double> cost(ba.size());
    for (std::size_t i = 0; i < ba.size(); ++i)
        cost[i] = static_cast<double>(ba[i].numPts());

    using S = DistributionMapping::Strategy;
    for (S strat : {S::RoundRobin, S::Sfc, S::Knapsack}) {
        const DistributionMapping plain(ba, 6, strat);
        const DistributionMapping weighted(ba, 6, cost, strat);
        EXPECT_EQ(plain.ranks(), weighted.ranks())
            << "strategy " << static_cast<int>(strat);
        EXPECT_NE(plain.id(), weighted.id()); // distinct builds, distinct ids
    }
}

TEST(WeightedMapping, KnapsackBoundOnRandomSkewedWeights) {
    const BoxArray ba = makeChoppedBa(32, 8);
    std::mt19937 rng(12345);
    std::lognormal_distribution<double> heavy(0.0, 1.5);
    std::vector<double> cost(ba.size());
    for (double& c : cost) c = 1.0 + heavy(rng);
    cost[3] *= 50.0; // a couple of burn-interface outliers
    cost[40] *= 80.0;

    const int nranks = 8;
    const DistributionMapping dm(ba, nranks, cost,
                                 DistributionMapping::Strategy::Knapsack);
    const auto per = dm.costPerRank(cost);
    ASSERT_EQ(per.size(), static_cast<std::size_t>(nranks));
    const double total = std::accumulate(cost.begin(), cost.end(), 0.0);
    const double wmax = *std::max_element(cost.begin(), cost.end());
    const double maxr = *std::max_element(per.begin(), per.end());
    // Greedy largest-first list scheduling: makespan <= mean + wmax.
    EXPECT_LE(maxr, total / nranks + wmax + 1.0e-9);
    EXPECT_NEAR(std::accumulate(per.begin(), per.end(), 0.0), total, 1.0e-9);
}

TEST(WeightedMapping, SfcChunksContiguousAlongCurveAndBounded) {
    const BoxArray ba = makeChoppedBa(32, 8);
    const std::vector<double> cost = cornerSkewedCost(ba, 20.0);
    const int nranks = 8;
    const DistributionMapping dm(ba, nranks, cost,
                                 DistributionMapping::Strategy::Sfc);

    // Reconstruct the Morton walk the builder uses (centers shifted by the
    // minimal box) and require ranks to be non-decreasing along it: the
    // cost-weighted SFC must still hand out contiguous, locality-
    // preserving chunks.
    const Box mb = ba.minimalBox();
    std::vector<std::size_t> order(ba.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::vector<std::uint64_t> code(ba.size());
    for (std::size_t i = 0; i < ba.size(); ++i) {
        const Box& b = ba[i];
        code[i] = mortonCode((b.smallEnd(0) + b.bigEnd(0)) / 2 - mb.smallEnd(0),
                             (b.smallEnd(1) + b.bigEnd(1)) / 2 - mb.smallEnd(1),
                             (b.smallEnd(2) + b.bigEnd(2)) / 2 - mb.smallEnd(2));
    }
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return code[a] < code[b]; });
    int prev = 0;
    for (std::size_t idx : order) {
        EXPECT_GE(dm[idx], prev);
        prev = dm[idx];
    }

    const auto per = dm.costPerRank(cost);
    const double total = std::accumulate(cost.begin(), cost.end(), 0.0);
    const double wmax = *std::max_element(cost.begin(), cost.end());
    const double maxr = *std::max_element(per.begin(), per.end());
    EXPECT_LE(maxr, total / nranks + wmax + 1.0e-9);
}

TEST(WeightedMapping, ImbalanceAndDescribeBalance) {
    const BoxArray ba = makeChoppedBa(16, 8); // 8 boxes
    const DistributionMapping dm(ba, 4);
    // Zone-count overload delegates to the cost-weighted one.
    std::vector<double> zones(ba.size());
    for (std::size_t i = 0; i < ba.size(); ++i)
        zones[i] = static_cast<double>(ba[i].numPts());
    EXPECT_DOUBLE_EQ(DistributionMapping::imbalance(ba, dm),
                     DistributionMapping::imbalance(zones, dm));
    // 8 equal boxes on 4 ranks: perfectly balanced.
    EXPECT_DOUBLE_EQ(DistributionMapping::imbalance(zones, dm), 1.0);

    // One rank holding everything: imbalance = nranks.
    std::vector<double> uniform(ba.size(), 1.0);
    std::vector<double> lopsided(ba.size(), 0.0);
    lopsided[0] = 1.0;
    const DistributionMapping knap(ba, 4, uniform,
                                   DistributionMapping::Strategy::Knapsack);
    std::vector<double> one_rank_cost(ba.size(), 0.0);
    for (std::size_t i = 0; i < ba.size(); ++i)
        one_rank_cost[i] = knap[i] == 0 ? 1.0 : 0.0;
    EXPECT_DOUBLE_EQ(DistributionMapping::imbalance(one_rank_cost, knap), 4.0);

    const std::string rep = DistributionMapping::describeBalance(uniform, knap);
    EXPECT_NE(rep.find("max/mean"), std::string::npos);
    EXPECT_NE(rep.find("r0="), std::string::npos);
    // Mismatched sizes degrade gracefully.
    EXPECT_EQ(DistributionMapping::describeBalance({}, knap),
              "balance: (no cost data)");
}

// --- CostMonitor ---------------------------------------------------------

TEST(CostMonitor, EmaSmoothingSeedsThenBlends) {
    CostMonitorOptions opt;
    opt.ema_alpha = 0.7;
    opt.metric = CostMetric::Work;
    CostMonitor mon(opt);
    mon.resetLevel(0, 2);

    EXPECT_TRUE(mon.costs(0).empty()); // nothing committed yet
    EXPECT_EQ(mon.committedSteps(0), 0);

    mon.addWork(0, 0, 10.0);
    mon.addWork(0, 1, 2.0);
    mon.commitStep(0);
    auto c = mon.costs(0);
    ASSERT_EQ(c.size(), 2u);
    EXPECT_DOUBLE_EQ(c[0], 10.0); // first commit seeds the EMA
    EXPECT_DOUBLE_EQ(c[1], 2.0);

    // A silent step decays toward zero at rate (1 - alpha).
    mon.commitStep(0);
    c = mon.costs(0);
    EXPECT_DOUBLE_EQ(c[0], 3.0);
    EXPECT_DOUBLE_EQ(c[1], 0.6);
    EXPECT_EQ(mon.committedSteps(0), 2);

    // Reset forgets everything (regrid: old boxes mean nothing).
    mon.resetLevel(0, 4);
    EXPECT_EQ(mon.committedSteps(0), 0);
    EXPECT_TRUE(mon.costs(0).empty());
}

TEST(CostMonitor, OutOfRangeFeedsGrowAndLevelsAutoCreate) {
    CostMonitor mon;
    mon.addWork(2, 5, 7.0); // never resetLevel'd: must not crash
    mon.commitStep(2);
    const auto c = mon.costs(2);
    ASSERT_EQ(c.size(), 6u);
    EXPECT_DOUBLE_EQ(c[5], 7.0);
}

TEST(CostMonitor, HybridMetricBlendsBothChannels) {
    CostMonitorOptions opt;
    opt.metric = CostMetric::Hybrid;
    CostMonitor mon(opt);
    mon.resetLevel(0, 2);
    mon.addWork(0, 0, 100.0);
    mon.addWork(0, 1, 100.0);
    mon.addTime(0, 0, 0.9); // time channel sees a skew work misses
    mon.addTime(0, 1, 0.1);
    mon.commitStep(0);
    const auto c = mon.costs(0);
    ASSERT_EQ(c.size(), 2u);
    EXPECT_GT(c[0], c[1]); // mean-normalized blend keeps the time skew
    EXPECT_GT(c[1], 0.0);  // and stays positive everywhere
}

TEST(CostMonitor, ScopedFabTimerCreditsAndNullIsNoop) {
    CostMonitorOptions opt;
    opt.metric = CostMetric::Time;
    CostMonitor mon(opt);
    mon.resetLevel(0, 1);
    {
        CostMonitor::ScopedFabTimer t(&mon, 0, 0);
        volatile double sink = 0.0;
        for (int i = 0; i < 10000; ++i) sink = sink + std::sqrt(double(i));
        (void)sink;
    }
    mon.commitStep(0);
    const auto c = mon.costs(0);
    ASSERT_EQ(c.size(), 1u);
    EXPECT_GT(c[0], 0.0);

    { CostMonitor::ScopedFabTimer t(nullptr, 0, 0); } // must not crash
}

// --- MultiFab::Redistribute ----------------------------------------------

class RebalanceBackends : public ::testing::TestWithParam<Backend> {};

TEST_P(RebalanceBackends, RedistributePreservesBitsAndRetargetsOwnership) {
    ScopedBackend backend(GetParam());
    const BoxArray ba = makeChoppedBa(16, 8); // 8 boxes
    const DistributionMapping dm(ba, 4);
    MultiFab mf = makeFilled(ba, dm, 3, 2);
    const MultiFab ref = makeFilled(ba, dm, 3, 2);

    // Migrate to a deliberately different mapping (reversed rank table).
    std::vector<double> cost(ba.size(), 1.0);
    cost[0] = 100.0;
    const DistributionMapping target(ba, 4, cost,
                                     DistributionMapping::Strategy::Knapsack);
    ASSERT_NE(target.ranks(), dm.ranks());

    std::int64_t expect_moved = 0;
    for (std::size_t i = 0; i < ba.size(); ++i)
        if (target[i] != dm[i]) ++expect_moved;

    const auto st = mf.Redistribute(target);
    EXPECT_EQ(st.boxes_moved, expect_moved);
    EXPECT_GT(st.bytes, 0);
    EXPECT_EQ(mf.distributionMap().id(), target.id());
    expectIdentical(mf, ref); // valid + ghost zones bit-identical

    // Same rank table again: a no-op that keeps the mapping id (cached
    // communication plans stay warm).
    const auto old_id = mf.distributionMap().id();
    const auto st2 = mf.Redistribute(target);
    EXPECT_EQ(st2.boxes_moved, 0);
    EXPECT_EQ(st2.bytes, 0);
    EXPECT_EQ(mf.distributionMap().id(), old_id);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, RebalanceBackends,
                         ::testing::Values(Backend::Serial, Backend::OpenMP,
                                           Backend::SimGpu, Backend::Debug),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                             switch (info.param) {
                             case Backend::Serial: return "Serial";
                             case Backend::OpenMP: return "OpenMP";
                             case Backend::SimGpu: return "SimGpu";
                             case Backend::Debug: return "Debug";
                             }
                             return "Unknown";
                         });

// --- Rebalancer trigger policy -------------------------------------------

TEST(Rebalancer, UniformCostNeverTriggersAndMappingIsUntouched) {
    const BoxArray ba = makeChoppedBa(32, 8);
    const DistributionMapping dm(ba, 8);
    MultiFab state = makeFilled(ba, dm, 2, 1);

    RebalanceOptions opt;
    opt.enabled = true;
    opt.warmup_steps = 1;
    opt.min_interval = 1;
    Rebalancer reb(opt);
    reb.noteRegrid(0, ba.size());

    const auto id0 = state.distributionMap().id();
    for (int s = 0; s < 10; ++s) {
        for (std::size_t f = 0; f < ba.size(); ++f)
            reb.monitor().addWork(0, static_cast<int>(f),
                                  static_cast<double>(ba[f].numPts()));
        const auto d = reb.step(0, s, {&state});
        EXPECT_FALSE(d.performed) << "step " << s << ": " << d.reason;
        EXPECT_DOUBLE_EQ(d.measured_imbalance, 1.0);
    }
    EXPECT_EQ(reb.stats().rebalances, 0);
    EXPECT_EQ(state.distributionMap().id(), id0);
}

TEST(Rebalancer, CornerSkewTriggersMigratesAndAccountsInLedger) {
    const BoxArray ba = makeChoppedBa(32, 8);
    const DistributionMapping dm(ba, 8); // zone-count SFC cold start
    MultiFab state = makeFilled(ba, dm, 4, 2);
    MultiFab aux = makeFilled(ba, dm, 1, 0);
    const MultiFab ref_state = makeFilled(ba, dm, 4, 2);
    const MultiFab ref_aux = makeFilled(ba, dm, 1, 0);

    CommLedger ledger;
    ledger.attach();

    RebalanceOptions opt;
    opt.enabled = true;
    opt.warmup_steps = 2;
    opt.min_interval = 4;
    opt.imbalance_trigger = 1.5;
    Rebalancer reb(opt);
    reb.noteRegrid(0, ba.size());

    const std::vector<double> cost = cornerSkewedCost(ba, 10.0);
    auto feed = [&] {
        for (std::size_t f = 0; f < ba.size(); ++f)
            reb.monitor().addWork(0, static_cast<int>(f), cost[f]);
    };

    feed();
    auto d = reb.step(0, 0, {&state, &aux});
    EXPECT_FALSE(d.performed) << d.reason; // warming up (1 committed sample)

    feed();
    d = reb.step(0, 1, {&state, &aux});
    ASSERT_TRUE(d.performed) << d.reason;
    EXPECT_GE(d.measured_imbalance, opt.imbalance_trigger);
    EXPECT_LT(d.predicted_imbalance, d.measured_imbalance * opt.hysteresis);
    EXPECT_GT(d.boxes_moved, 0);
    EXPECT_GT(d.bytes_moved, 0);

    // Both registered fabs migrated to the same mapping, data intact.
    EXPECT_EQ(state.distributionMap().id(), aux.distributionMap().id());
    expectIdentical(state, ref_state);
    expectIdentical(aux, ref_aux);
    // The candidate really fixed the balance.
    EXPECT_LT(DistributionMapping::imbalance(cost, state.distributionMap()),
              DistributionMapping::imbalance(cost, dm));

    // CommLedger saw the migration: event counters and tagged bytes agree
    // with the decision.
    EXPECT_EQ(ledger.rebalancesPerformed(), 1);
    EXPECT_EQ(ledger.migrationBytes(), d.bytes_moved);
    EXPECT_EQ(ledger.migrationBoxesMoved(), d.boxes_moved);
    EXPECT_EQ(ledger.bytesWithTag("rebalance"), d.bytes_moved);

    // Within min_interval the trigger is held even under fresh skew.
    feed();
    d = reb.step(0, 2, {&state, &aux});
    EXPECT_FALSE(d.performed);
    EXPECT_EQ(d.reason, "min-interval hold");

    // After the hold expires the (now balanced) mapping stays put.
    for (std::int64_t s = 3; s < 8; ++s) {
        feed();
        d = reb.step(0, s, {&state, &aux});
        EXPECT_FALSE(d.performed) << "step " << s << ": " << d.reason;
    }
    EXPECT_EQ(reb.stats().rebalances, 1);
    ledger.detach();
}

TEST(Rebalancer, SkippedDuringStepGuardRetryAndDiagnosedUnderDebug) {
    const BoxArray ba = makeChoppedBa(16, 8);
    const DistributionMapping dm(ba, 4);
    MultiFab state = makeFilled(ba, dm, 1, 0);

    RebalanceOptions opt;
    opt.enabled = true;
    opt.warmup_steps = 0;
    opt.imbalance_trigger = 1.01;
    Rebalancer reb(opt);
    reb.noteRegrid(0, ba.size());
    // Bank a skew so the trigger would certainly fire outside the guard:
    // everything rank 0 owns is expensive (a spread-out candidate halves
    // the makespan, so hysteresis cannot hold it back).
    for (std::size_t f = 0; f < ba.size(); ++f)
        reb.monitor().addWork(0, static_cast<int>(f),
                              dm[f] == 0 ? 1000.0 : 1.0);

    StepGuardOptions gopt;
    gopt.enabled = true;
    gopt.verbose = false;
    StepGuard guard(gopt);

    for (Backend b : {Backend::Serial, Backend::Debug}) {
        ScopedBackend backend(b);
        debug::ScopedViolationTrap trap;
        debug::clearViolations();
        RebalanceDecision inner;
        guard.advance(
            1.0, [&](StateSnapshot& snap) { snap.capture(state); },
            [&](const StateSnapshot& snap) { snap.restoreTo(0, state); },
            [&](Real, int) { inner = reb.step(0, 100, {&state}); },
            [&] { return ValidationReport{}; },
            [&](const StateSnapshot&, bool) {});
        EXPECT_FALSE(inner.performed);
        EXPECT_EQ(inner.reason, "rebalance-during-retry");
        if (b == Backend::Debug) {
            ASSERT_GE(debug::violationCount(), 1u);
            EXPECT_EQ(debug::violations().back().kind, "rebalance-during-retry");
        } else {
            EXPECT_EQ(debug::violationCount(), 0u);
        }
        debug::clearViolations();
    }
    EXPECT_EQ(reb.stats().rebalances, 0);

    // Outside the guard the banked skew fires normally.
    const auto d = reb.step(0, 101, {&state});
    EXPECT_TRUE(d.performed) << d.reason;
}

// --- fault injection: migration-payload-corrupt --------------------------

TEST(RebalanceFault, CorruptMigrationIsCaughtByCheckFinite) {
    const BoxArray ba = makeChoppedBa(16, 8);
    const DistributionMapping dm(ba, 4);
    MultiFab mf = makeFilled(ba, dm, 2, 1);

    std::vector<double> cost(ba.size(), 1.0);
    cost[0] = 100.0;
    const DistributionMapping target(ba, 4, cost,
                                     DistributionMapping::Strategy::Knapsack);
    ASSERT_NE(target.ranks(), dm.ranks());

    fault::ScopedFault inject(fault::Site::MigrationPayloadCorrupt);
    const auto st = mf.Redistribute(target);
    ASSERT_GT(st.boxes_moved, 0);

    // The StepGuard validator building block sees the poisoned payload.
    ValidationReport rep;
    checkFinite(mf, rep, "migrated state");
    ASSERT_FALSE(rep.ok());
    EXPECT_EQ(rep.issues.front().check, "non-finite");
}

TEST(RebalanceFault, CorruptMigrationIsCaughtByDebugBackendVerify) {
    ScopedBackend backend(Backend::Debug);
    debug::ScopedViolationTrap trap;
    debug::clearViolations();

    const BoxArray ba = makeChoppedBa(32, 8);
    const DistributionMapping dm(ba, 8);
    MultiFab state = makeFilled(ba, dm, 2, 1);

    RebalanceOptions opt;
    opt.enabled = true;
    opt.warmup_steps = 1;
    opt.min_interval = 1;
    Rebalancer reb(opt);
    reb.noteRegrid(0, ba.size());
    const std::vector<double> cost = cornerSkewedCost(ba, 100.0);
    for (std::size_t f = 0; f < ba.size(); ++f)
        reb.monitor().addWork(0, static_cast<int>(f), cost[f]);

    fault::ScopedFault inject(fault::Site::MigrationPayloadCorrupt);
    const auto d = reb.step(0, 0, {&state});
    ASSERT_TRUE(d.performed) << d.reason;

    bool found = false;
    for (const auto& v : debug::violations())
        if (v.kind == "migration-data-corruption") found = true;
    EXPECT_TRUE(found)
        << "Debug-backend bit-identity verify missed the poisoned payload";
    debug::clearViolations();
}

// --- driver-level equivalence and wiring ---------------------------------

TEST(RebalanceDrivers, CastroGuardedStepIdenticalWithUniformCostRebalancing) {
    auto net = makeIgnitionSimple();
    castro::SedovParams p;
    p.ncell = 16;
    p.max_grid_size = 8;
    p.nranks = 4;
    p.guard.enabled = true;

    auto run = [&](bool rebalance) {
        castro::SedovParams q = p;
        q.rebalance.enabled = rebalance;
        q.rebalance.warmup_steps = 1;
        q.rebalance.min_interval = 1;
        auto c = q.build(net);
        const Real dt = c->estimateDt();
        for (int s = 0; s < 3; ++s) c->step(dt);
        return c;
    };
    auto off = run(false);
    auto on = run(true);
    // Near-uniform cost: the trigger must never fire, and the physics must
    // be bit-identical with the subsystem enabled.
    EXPECT_EQ(on->rebalancer().stats().rebalances, 0);
    expectIdentical(off->state(), on->state());
}

TEST(RebalanceDrivers, CastroTimeMetricCreditsComputeNotCommWaits) {
    // Regression: the hydro Time channel used to be fed the whole
    // hydroAdvance wall time — ghost-exchange waits included — booked
    // per box as hydro cost. With slow comm that skews Time-metric
    // rebalancing toward whichever boxes wait longest. Inflate every
    // halo message with a sleep and check the credited hydro seconds
    // stay at compute scale, far below the step's wall time.
    auto net = makeIgnitionSimple();
    castro::SedovParams q;
    q.ncell = 16;
    q.max_grid_size = 8;
    q.nranks = 4;
    q.rebalance.enabled = true;
    q.rebalance.warmup_steps = 100; // never migrate: we only read the monitor
    q.rebalance.cost.metric = CostMetric::Time;
    auto c = q.build(net);

    CommHooks::setMessageHook([](const MessageRecord&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    });
    const Real dt = c->estimateDt();
    const int nsteps = 2;
    WallTimer wall;
    for (int s = 0; s < nsteps; ++s) c->step(dt);
    const double wall_s = wall.seconds();
    CommHooks::clearMessageHook();

    const auto costs = c->rebalancer().monitor().costs(0);
    ASSERT_FALSE(costs.empty());
    const double credited = std::accumulate(costs.begin(), costs.end(), 0.0);
    // The sleeps actually dominated the run...
    ASSERT_GT(wall_s, 0.02 * nsteps);
    // ...and none of that wait landed in the per-box hydro costs (the EMA
    // holds roughly one step's credit; whole-wall crediting would put it
    // at per-step wall scale).
    EXPECT_LT(credited, 0.5 * wall_s / nsteps);
}

TEST(RebalanceDrivers, MaestroAdvanceIdenticalWithUniformCostRebalancing) {
    auto net = makeIgnitionSimple();
    maestro::BubbleParams p;
    p.ncell = 16;
    p.max_grid_size = 8;
    p.nranks = 4;
    p.do_react = false;

    auto run = [&](bool rebalance) {
        maestro::BubbleParams q = p;
        q.rebalance.enabled = rebalance;
        q.rebalance.warmup_steps = 1;
        q.rebalance.min_interval = 1;
        auto m = q.build(net);
        const Real dt = m->estimateDt();
        for (int s = 0; s < 2; ++s) m->step(dt);
        return m;
    };
    auto off = run(false);
    auto on = run(true);
    EXPECT_EQ(on->rebalancer().stats().rebalances, 0);
    expectIdentical(off->state(), on->state());
}

TEST(RebalanceDrivers, CastroInjectedSkewTriggersMigrationAndPreservesState) {
    auto net = makeIgnitionSimple();
    castro::SedovParams p;
    p.ncell = 16;
    p.max_grid_size = 8;
    p.nranks = 4;

    auto run = [&](bool skew) {
        castro::SedovParams q = p;
        q.rebalance.enabled = true;
        q.rebalance.warmup_steps = 1;
        q.rebalance.min_interval = 1;
        q.rebalance.imbalance_trigger = 1.3;
        auto c = q.build(net);
        // Pretend the boxes rank 0 starts with host a burn interface:
        // inject model work on top of the driver's own accounting. Once
        // they migrate apart the skew stays attached to the boxes, so the
        // trigger fires once and then rests.
        std::vector<int> hot;
        const DistributionMapping dm0 = c->state().distributionMap();
        for (std::size_t f = 0; f < dm0.size(); ++f)
            if (dm0[f] == 0) hot.push_back(static_cast<int>(f));
        const Real dt = c->estimateDt();
        for (int s = 0; s < 3; ++s) {
            if (skew)
                for (int f : hot) c->rebalancer().monitor().addWork(0, f, 1.0e7);
            c->step(dt);
        }
        return c;
    };
    auto plain = run(false);
    auto skewed = run(true);
    // The injected skew must actually migrate...
    EXPECT_GE(skewed->rebalancer().stats().rebalances, 1);
    EXPECT_GT(skewed->rebalancer().stats().bytes_moved, 0);
    // ...while leaving the physics bit-identical: migration moves data,
    // never changes it, and the simulated-rank loops are rank-agnostic.
    expectIdentical(plain->state(), skewed->state());
}

TEST(RebalanceDrivers, MaestroInjectedSkewMigratesAllCoupledFabs) {
    auto net = makeIgnitionSimple();
    maestro::BubbleParams p;
    p.ncell = 16;
    p.max_grid_size = 8;
    p.nranks = 4;
    p.do_react = false;
    p.rebalance.enabled = true;
    p.rebalance.warmup_steps = 1;
    p.rebalance.min_interval = 1;
    p.rebalance.imbalance_trigger = 1.3;

    auto m = p.build(net);
    const auto id0 = m->state().distributionMap().id();
    std::vector<int> hot;
    const DistributionMapping dm0 = m->state().distributionMap();
    for (std::size_t f = 0; f < dm0.size(); ++f)
        if (dm0[f] == 0) hot.push_back(static_cast<int>(f));
    const Real dt = m->estimateDt();
    for (int s = 0; s < 3; ++s) {
        for (int f : hot) m->rebalancer().monitor().addWork(0, f, 1.0e7);
        m->step(dt);
    }
    ASSERT_GE(m->rebalancer().stats().rebalances, 1);
    EXPECT_NE(m->state().distributionMap().id(), id0);
    // The projection fabs (phi, divU) ride along on the same mapping; a
    // projection on the migrated layout must still close the loop.
    m->project();
    EXPECT_TRUE(std::isfinite(m->maxAbsDivergence()));
}

// --- Metric calibration on a real burn-dominated workload ----------------

TEST(CostMonitor, AllMetricsAgreeOnABurnDominatedSkew) {
    // One fab carries every burning zone, the rest are inert. Whichever
    // metric the balancer is configured with — model work units, measured
    // wall seconds, or the hybrid blend — the burning fab must dominate
    // its costs, i.e. the Time and Hybrid channels are calibrated well
    // enough to reproduce the (deterministic) work channel's ranking on
    // a burn-heavy step. This is the property the WD-collision driver's
    // CostMetric::Hybrid default relies on.
    auto net = makeNetworkByName("iso7");
    Eos eos{HelmLiteEos{}};
    const int ncell = 16;
    BoxArray ba = makeChoppedBa(ncell, 8);
    DistributionMapping dm(ba, 1);
    MultiFab state(ba, dm, castro::StateLayout(net.nspec()).ncomp(), 0);

    std::vector<Real> X(net.nspec(), 0.0);
    X[net.speciesIndex("c12")] = 0.5;
    X[net.speciesIndex("o16")] = 0.5;
    int hot_fab = -1;
    for (std::size_t f = 0; f < state.size(); ++f) {
        auto u = state.array(static_cast<int>(f));
        const Box& vb = state.box(static_cast<int>(f));
        const bool hot = vb.contains(0, 0, 0); // one burning fab
        if (hot) hot_fab = static_cast<int>(f);
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                    const Real rho = 1.0e7;
                    u(i, j, k, castro::StateLayout::URHO) = rho;
                    u(i, j, k, castro::StateLayout::UTEMP) = hot ? 9.0e8 : 3.0e7;
                    for (int n = 0; n < net.nspec(); ++n)
                        u(i, j, k, castro::StateLayout::UFS + n) = rho * X[n];
                    u(i, j, k, castro::StateLayout::UEDEN) = rho * 1.0e17;
                }
    }
    ASSERT_GE(hot_fab, 0);

    for (CostMetric metric :
         {CostMetric::Work, CostMetric::Time, CostMetric::Hybrid}) {
        CostMonitorOptions co;
        co.metric = metric;
        CostMonitor mon(co);
        MultiFab work(ba, dm, state.nComp(), 0);
        MultiFab::Copy(work, state, 0, 0, state.nComp(), 0);
        castro::reactState(work, net, eos, 1.0e-6, castro::ReactOptions{}, &mon, 0);
        mon.commitStep(0);
        const auto c = mon.costs(0);
        ASSERT_EQ(c.size(), state.size());
        for (std::size_t f = 0; f < c.size(); ++f) {
            if (static_cast<int>(f) == hot_fab) continue;
            EXPECT_GT(c[hot_fab], 2.0 * c[f])
                << "metric " << static_cast<int>(metric) << " fab " << f;
        }
    }
}
