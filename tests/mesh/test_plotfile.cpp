#include "core/fault.hpp"
#include "core/parallel_for.hpp"
#include "mesh/plotfile.hpp"
#include "perf/device_model.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace exa;

namespace {

MultiFab makeState(int n, int nc, int seed) {
    BoxArray ba(Box({0, 0, 0}, {n - 1, n - 1, n - 1}));
    ba.maxSize(n / 2);
    DistributionMapping dm(ba, 2);
    MultiFab mf(ba, dm, nc, 2);
    mf.setVal(-7.0); // ghosts get a sentinel: they must not be persisted
    for (std::size_t b = 0; b < mf.size(); ++b) {
        auto a = mf.array(static_cast<int>(b));
        ParallelFor(mf.box(static_cast<int>(b)), nc, [=](int i, int j, int k, int c) {
            a(i, j, k, c) = seed + i + 10 * j + 100 * k + 1000 * c;
        });
    }
    return mf;
}

struct TmpDir {
    std::string path;
    explicit TmpDir(const std::string& name)
        : path(std::string("/tmp/exastro_test_") + name) {
        std::filesystem::remove_all(path);
    }
    ~TmpDir() { std::filesystem::remove_all(path); }
};

} // namespace

TEST(Plotfile, RoundTripRestoresStateExactly) {
    TmpDir dir("roundtrip");
    Geometry geom(Box({0, 0, 0}, {7, 7, 7}), {0, 0, 0}, {1, 1, 1});
    MultiFab mf = makeState(8, 3, 5);
    const auto bytes =
        writePlotfile(dir.path, mf, geom, {"rho", "T", "x"}, 1.25, 42);
    EXPECT_EQ(bytes, 8LL * 8 * 8 * 3 * 8);

    MultiFab back = makeState(8, 3, 0); // different data, same layout
    const auto rbytes = readPlotfileLevel(dir.path, 0, back);
    EXPECT_EQ(rbytes, bytes);
    for (std::size_t b = 0; b < mf.size(); ++b) {
        auto a = mf.const_array(static_cast<int>(b));
        auto c = back.const_array(static_cast<int>(b));
        const Box& vb = mf.box(static_cast<int>(b));
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i)
                    for (int n = 0; n < 3; ++n)
                        ASSERT_EQ(a(i, j, k, n), c(i, j, k, n));
    }
}

TEST(Plotfile, HeaderRecordsMetadata) {
    TmpDir dir("header");
    Geometry geom(Box({0, 0, 0}, {7, 7, 7}), {0, 0, 0}, {1, 1, 1});
    MultiFab mf = makeState(8, 2, 1);
    writePlotfile(dir.path, mf, geom, {"rho", "T"}, 3.5, 17);
    auto h = readPlotfileHeader(dir.path);
    EXPECT_EQ(h.nlevels, 1);
    EXPECT_EQ(h.ncomp, 2);
    EXPECT_DOUBLE_EQ(h.time, 3.5);
    EXPECT_EQ(h.step, 17);
    ASSERT_EQ(h.varnames.size(), 2u);
    EXPECT_EQ(h.varnames[0], "rho");
    ASSERT_EQ(h.boxes[0].size(), mf.size());
    EXPECT_EQ(h.boxes[0][0], mf.box(0));
}

TEST(Plotfile, MultiLevelWrite) {
    TmpDir dir("multilevel");
    Geometry g0(Box({0, 0, 0}, {7, 7, 7}), {0, 0, 0}, {1, 1, 1});
    Geometry g1 = g0.refined(2);
    MultiFab l0 = makeState(8, 1, 2);
    MultiFab l1 = makeState(16, 1, 3);
    const auto bytes = writePlotfile(dir.path, {&l0, &l1}, {g0, g1}, {"rho"}, 0.0, 0);
    EXPECT_EQ(bytes, (8LL * 8 * 8 + 16LL * 16 * 16) * 8);
    auto h = readPlotfileHeader(dir.path);
    EXPECT_EQ(h.nlevels, 2);
    MultiFab back = makeState(16, 1, 9);
    readPlotfileLevel(dir.path, 1, back);
    EXPECT_DOUBLE_EQ(back.const_array(0)(1, 0, 0, 0), 3.0 + 1.0);
}

TEST(Plotfile, MismatchedRestartRejected) {
    TmpDir dir("mismatch");
    Geometry geom(Box({0, 0, 0}, {7, 7, 7}), {0, 0, 0}, {1, 1, 1});
    MultiFab mf = makeState(8, 1, 0);
    writePlotfile(dir.path, mf, geom, {"rho"}, 0.0, 0);
    MultiFab wrong = makeState(16, 1, 0);
    EXPECT_THROW(readPlotfileLevel(dir.path, 0, wrong), std::runtime_error);
    EXPECT_THROW(readPlotfileLevel(dir.path, 3, mf), std::runtime_error);
    EXPECT_THROW(readPlotfileHeader("/tmp/definitely_not_a_plotfile_xyz"),
                 std::runtime_error);
}

namespace {

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void spit(const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
}

// what() of the error a callable throws ("" if it does not throw).
template <typename F>
std::string thrownMessage(F&& f) {
    try {
        f();
    } catch (const std::runtime_error& e) {
        return e.what();
    }
    return "";
}

} // namespace

TEST(PlotfileIntegrity, FlippedPayloadBitRejectedNamingTheFab) {
    TmpDir dir("bitflip");
    Geometry geom(Box({0, 0, 0}, {7, 7, 7}), {0, 0, 0}, {1, 1, 1});
    MultiFab mf = makeState(8, 2, 4);
    writePlotfile(dir.path, mf, geom, {"rho", "T"}, 1.0, 3);

    // Flip one bit of fab 2's payload, as bad disk would.
    const std::string victim = dir.path + "/Level_0/fab_2.bin";
    std::string payload = slurp(victim);
    ASSERT_FALSE(payload.empty());
    payload[payload.size() / 2] ^= 0x01;
    spit(victim, payload);

    MultiFab back = makeState(8, 2, 0);
    const std::string msg =
        thrownMessage([&] { readPlotfileLevel(dir.path, 0, back); });
    EXPECT_NE(msg.find("fab 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("checksum mismatch"), std::string::npos) << msg;
    // Headers (and the other fabs) are still intact.
    EXPECT_EQ(readPlotfileHeader(dir.path).version, 2);
}

TEST(PlotfileIntegrity, InjectedBitFlipCaughtOnRestart) {
    fault::disarmAll();
    TmpDir dir("faultflip");
    Geometry geom(Box({0, 0, 0}, {7, 7, 7}), {0, 0, 0}, {1, 1, 1});
    MultiFab mf = makeState(8, 1, 6);
    {
        fault::ScopedFault f(fault::Site::CheckpointBitFlip); // first fab only
        writePlotfile(dir.path, mf, geom, {"rho"}, 0.0, 0);
        EXPECT_EQ(fault::stats(fault::Site::CheckpointBitFlip).fires, 1);
    }
    MultiFab back = makeState(8, 1, 0);
    const std::string msg =
        thrownMessage([&] { readPlotfileLevel(dir.path, 0, back); });
    EXPECT_NE(msg.find("fab 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("corrupted payload"), std::string::npos) << msg;
}

TEST(PlotfileIntegrity, TamperedHeaderRejected) {
    TmpDir dir("hdrtamper");
    Geometry geom(Box({0, 0, 0}, {7, 7, 7}), {0, 0, 0}, {1, 1, 1});
    MultiFab mf = makeState(8, 1, 1);
    writePlotfile(dir.path, mf, geom, {"rho"}, 2.0, 9);

    std::string hdr = slurp(dir.path + "/Header");
    // Tamper with the recorded step count without updating headercrc.
    const auto pos = hdr.find(" 9\n");
    ASSERT_NE(pos, std::string::npos);
    hdr[pos + 1] = '7';
    spit(dir.path + "/Header", hdr);

    const std::string msg = thrownMessage([&] { readPlotfileHeader(dir.path); });
    EXPECT_NE(msg.find("header checksum mismatch"), std::string::npos) << msg;
}

TEST(PlotfileIntegrity, TruncatedHeaderRejected) {
    TmpDir dir("hdrtrunc");
    Geometry geom(Box({0, 0, 0}, {7, 7, 7}), {0, 0, 0}, {1, 1, 1});
    MultiFab mf = makeState(8, 1, 1);
    writePlotfile(dir.path, mf, geom, {"rho"}, 0.0, 0);

    // A crash mid-write would leave a v2 header without its headercrc
    // trailer; the atomic rename normally makes this impossible, so build
    // it by hand.
    std::string hdr = slurp(dir.path + "/Header");
    const auto tag = hdr.rfind("headercrc ");
    ASSERT_NE(tag, std::string::npos);
    spit(dir.path + "/Header", hdr.substr(0, tag));

    const std::string msg = thrownMessage([&] { readPlotfileHeader(dir.path); });
    EXPECT_NE(msg.find("headercrc"), std::string::npos) << msg;
}

TEST(PlotfileIntegrity, TruncatedFabPayloadRejected) {
    TmpDir dir("fabtrunc");
    Geometry geom(Box({0, 0, 0}, {7, 7, 7}), {0, 0, 0}, {1, 1, 1});
    MultiFab mf = makeState(8, 1, 1);
    writePlotfile(dir.path, mf, geom, {"rho"}, 0.0, 0);

    const std::string victim = dir.path + "/Level_0/fab_1.bin";
    const std::string payload = slurp(victim);
    spit(victim, payload.substr(0, payload.size() / 2));

    MultiFab back = makeState(8, 1, 0);
    const std::string msg =
        thrownMessage([&] { readPlotfileLevel(dir.path, 0, back); });
    EXPECT_NE(msg.find("fab 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("short read"), std::string::npos) << msg;
}

TEST(PlotfileIntegrity, SuccessfulWriteLeavesNoStagingDir) {
    TmpDir dir("atomic");
    Geometry geom(Box({0, 0, 0}, {7, 7, 7}), {0, 0, 0}, {1, 1, 1});
    MultiFab mf = makeState(8, 1, 1);
    writePlotfile(dir.path, mf, geom, {"rho"}, 0.0, 0);
    EXPECT_TRUE(std::filesystem::exists(dir.path + "/Header"));
    EXPECT_FALSE(std::filesystem::exists(dir.path + ".tmp"));
}

TEST(PlotfileIntegrity, RewriteReplacesPreviousCheckpointAtomically) {
    TmpDir dir("rewrite");
    Geometry geom(Box({0, 0, 0}, {7, 7, 7}), {0, 0, 0}, {1, 1, 1});
    MultiFab a = makeState(8, 1, 1);
    MultiFab b = makeState(8, 1, 2);
    writePlotfile(dir.path, a, geom, {"rho"}, 0.0, 0);
    writePlotfile(dir.path, b, geom, {"rho"}, 1.0, 1);
    auto h = readPlotfileHeader(dir.path);
    EXPECT_EQ(h.step, 1);
    MultiFab back = makeState(8, 1, 0);
    readPlotfileLevel(dir.path, 0, back);
    EXPECT_DOUBLE_EQ(back.const_array(0)(1, 0, 0, 0), 2.0 + 1.0);
    EXPECT_FALSE(std::filesystem::exists(dir.path + ".tmp"));
}

TEST(Plotfile, CheckpointBytesPriceTheHostCopy) {
    // The paper: checkpoints copy device data to the host; the device
    // model prices that copy over NVLink.
    TmpDir dir("chk");
    Geometry geom(Box({0, 0, 0}, {15, 15, 15}), {0, 0, 0}, {1, 1, 1});
    MultiFab mf = makeState(16, 8, 0);
    const auto bytes = writePlotfile(dir.path, mf, geom,
                                     {"a", "b", "c", "d", "e", "f", "g", "h"}, 0.0,
                                     0);
    DeviceModel dev;
    const double t = dev.transferTime(static_cast<double>(bytes));
    EXPECT_GT(t, 0.0);
    EXPECT_NEAR(t, bytes / 45.0e9, 1e-12);
}
