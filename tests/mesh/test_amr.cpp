#include "core/parallel_for.hpp"
#include "mesh/amr_core.hpp"
#include "mesh/interp.hpp"

#include <gtest/gtest.h>

#include <cmath>

using namespace exa;

TEST(TagCluster, SingleZoneBecomesOneBlock) {
    TagCluster tc(4);
    auto boxes = tc.cluster(std::vector<IntVect>{{5, 5, 5}}, Box({0, 0, 0}, {31, 31, 31}));
    ASSERT_EQ(boxes.size(), 1u);
    EXPECT_EQ(boxes[0], Box({4, 4, 4}, {7, 7, 7}));
}

TEST(TagCluster, RectangularRegionMergesToOneBox) {
    TagCluster tc(4);
    std::vector<IntVect> tags;
    for (int k = 4; k < 12; ++k)
        for (int j = 8; j < 16; ++j)
            for (int i = 0; i < 16; ++i) tags.push_back({i, j, k});
    auto boxes = tc.cluster(tags, Box({0, 0, 0}, {31, 31, 31}));
    ASSERT_EQ(boxes.size(), 1u);
    EXPECT_EQ(boxes[0], Box({0, 8, 4}, {15, 15, 11}));
}

TEST(TagCluster, CoversAllTagsDisjointly) {
    TagCluster tc(8);
    // An L-shaped tag set.
    std::vector<IntVect> tags;
    for (int i = 0; i < 24; ++i) tags.push_back({i, 3, 3});
    for (int j = 0; j < 24; ++j) tags.push_back({3, j, 3});
    Box domain({0, 0, 0}, {63, 63, 63});
    auto boxes = tc.cluster(tags, domain);
    for (const auto& t : tags) {
        bool covered = false;
        for (const auto& b : boxes) covered = covered || b.contains(t);
        EXPECT_TRUE(covered);
    }
    for (std::size_t i = 0; i < boxes.size(); ++i)
        for (std::size_t j = i + 1; j < boxes.size(); ++j)
            EXPECT_FALSE(boxes[i].intersects(boxes[j]));
}

TEST(TagCluster, ClipsToDomain) {
    TagCluster tc(8);
    auto boxes = tc.cluster(std::vector<IntVect>{{30, 30, 30}}, Box({0, 0, 0}, {30, 30, 30}));
    ASSERT_EQ(boxes.size(), 1u);
    EXPECT_EQ(boxes[0], Box({24, 24, 24}, {30, 30, 30}));
}

namespace {

// Minimal AmrCore subclass: one state component following a spherical
// feature; tags zones inside a ball whose center moves between regrids.
class BallAmr : public AmrCore {
public:
    BallAmr(const Geometry& g, const AmrInfo& info) : AmrCore(g, info) {
        m_state.resize(info.max_level + 1);
    }

    std::array<Real, 3> ball_center{0.5, 0.5, 0.5};
    Real ball_radius = 0.15;

    MultiFab& state(int lev) { return m_state[lev]; }

    int n_from_scratch = 0, n_from_coarse = 0, n_remade = 0, n_cleared = 0;

protected:
    void fill(int lev, MultiFab& mf) {
        const Geometry& g = geom(lev);
        for (std::size_t i = 0; i < mf.size(); ++i) {
            auto a = mf.array(static_cast<int>(i));
            const Box& vb = mf.box(static_cast<int>(i));
            for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
                for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                    for (int ii = vb.smallEnd(0); ii <= vb.bigEnd(0); ++ii) {
                        const Real x = g.cellCenter(0, ii) - ball_center[0];
                        const Real y = g.cellCenter(1, j) - ball_center[1];
                        const Real z = g.cellCenter(2, k) - ball_center[2];
                        a(ii, j, k, 0) = std::sqrt(x * x + y * y + z * z);
                    }
        }
    }

    void MakeNewLevelFromScratch(int lev, const BoxArray& ba,
                                 const DistributionMapping& dm) override {
        m_state[lev].define(ba, dm, 1, 0);
        fill(lev, m_state[lev]);
        ++n_from_scratch;
    }
    void MakeNewLevelFromCoarse(int lev, const BoxArray& ba,
                                const DistributionMapping& dm) override {
        m_state[lev].define(ba, dm, 1, 0);
        fill(lev, m_state[lev]);
        ++n_from_coarse;
    }
    void RemakeLevel(int lev, const BoxArray& ba,
                     const DistributionMapping& dm) override {
        m_state[lev].define(ba, dm, 1, 0);
        fill(lev, m_state[lev]);
        ++n_remade;
    }
    void ClearLevel(int lev) override {
        m_state[lev].clear();
        ++n_cleared;
    }
    void ErrorEst(int lev, MultiFab& tags) override {
        const Real r = ball_radius;
        for (std::size_t i = 0; i < tags.size(); ++i) {
            auto t = tags.array(static_cast<int>(i));
            auto s = m_state[lev].const_array(static_cast<int>(i));
            ParallelFor(tags.box(static_cast<int>(i)), [=](int ii, int j, int k) {
                if (s(ii, j, k, 0) < r) t(ii, j, k) = 1.0;
            });
        }
    }

private:
    std::vector<MultiFab> m_state;
};

} // namespace

TEST(AmrCore, BuildsNestedHierarchy) {
    Geometry g(Box({0, 0, 0}, {31, 31, 31}), {0, 0, 0}, {1, 1, 1});
    AmrInfo info;
    info.max_level = 2;
    info.ref_ratio = 2;
    info.max_grid_size = 16;
    info.blocking_factor = 4;
    info.nranks = 4;
    BallAmr amr(g, info);
    amr.initBaseLevel();
    EXPECT_EQ(amr.finestLevel(), 0);
    amr.regrid(0);
    EXPECT_EQ(amr.finestLevel(), 2);
    EXPECT_EQ(amr.n_from_scratch, 1);
    EXPECT_EQ(amr.n_from_coarse, 2);

    // Every fine box must be covered by the coarser level (proper nesting)
    // and cover the tagged feature.
    for (int lev = 1; lev <= 2; ++lev) {
        BoxArray crse = amr.boxArray(lev);
        crse.coarsen(info.ref_ratio);
        for (const Box& b : crse.boxes()) {
            EXPECT_TRUE(amr.boxArray(lev - 1).contains(b));
        }
        EXPECT_TRUE(amr.boxArray(lev).isDisjoint());
    }

    // The refined region is a small fraction of the domain: the AMR
    // selling point from the paper's Section V.
    EXPECT_LT(amr.coveredFraction(2), 0.25);
    EXPECT_GT(amr.coveredFraction(2), 0.0);
}

TEST(AmrCore, RefinedRegionTracksBall) {
    Geometry g(Box({0, 0, 0}, {31, 31, 31}), {0, 0, 0}, {1, 1, 1});
    AmrInfo info;
    info.max_level = 1;
    info.max_grid_size = 16;
    info.blocking_factor = 4;
    BallAmr amr(g, info);
    amr.initBaseLevel();
    amr.regrid(0);
    const Box before = amr.boxArray(1).minimalBox();

    // Move the ball; refill level 0 (the tag source) and regrid.
    amr.ball_center = {0.2, 0.2, 0.2};
    amr.state(0).clear();
    amr.n_from_scratch = 0;
    // Re-create level 0 state with the new feature position.
    BoxArray ba0 = amr.boxArray(0);
    // (BallAmr::RemakeLevel refills from the analytic function.)
    // Access through regrid: ErrorEst uses the stale state, so refresh first.
    struct Refresher : BallAmr {
        using BallAmr::BallAmr;
    };
    // Simplest: rebuild level 0 state in place via the protected hook —
    // emulate by defining a fresh state.
    amr.state(0).define(ba0, amr.distributionMap(0), 1, 0);
    {
        const Geometry& g0 = amr.geom(0);
        for (std::size_t i = 0; i < amr.state(0).size(); ++i) {
            auto a = amr.state(0).array(static_cast<int>(i));
            const Box& vb = amr.state(0).box(static_cast<int>(i));
            for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
                for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                    for (int ii = vb.smallEnd(0); ii <= vb.bigEnd(0); ++ii) {
                        const Real x = g0.cellCenter(0, ii) - 0.2;
                        const Real y = g0.cellCenter(1, j) - 0.2;
                        const Real z = g0.cellCenter(2, k) - 0.2;
                        a(ii, j, k, 0) = std::sqrt(x * x + y * y + z * z);
                    }
        }
    }
    amr.regrid(0);
    const Box after = amr.boxArray(1).minimalBox();
    EXPECT_NE(before, after);
    // New refined region is nearer the origin.
    EXPECT_LT(after.bigEnd(0), before.bigEnd(0));
}

TEST(AmrCore, NoTagsMeansNoFineLevel) {
    Geometry g(Box({0, 0, 0}, {15, 15, 15}), {0, 0, 0}, {1, 1, 1});
    AmrInfo info;
    info.max_level = 2;
    BallAmr amr(g, info);
    amr.ball_radius = -1.0; // nothing tagged
    amr.initBaseLevel();
    amr.regrid(0);
    EXPECT_EQ(amr.finestLevel(), 0);
}

TEST(AmrCore, ClearsVanishedLevels) {
    Geometry g(Box({0, 0, 0}, {31, 31, 31}), {0, 0, 0}, {1, 1, 1});
    AmrInfo info;
    info.max_level = 1;
    info.blocking_factor = 4;
    BallAmr amr(g, info);
    amr.initBaseLevel();
    amr.regrid(0);
    ASSERT_EQ(amr.finestLevel(), 1);
    // Shrink the feature to nothing and regrid: level 1 must vanish.
    amr.ball_radius = -1.0;
    amr.regrid(0);
    EXPECT_EQ(amr.finestLevel(), 0);
    EXPECT_EQ(amr.n_cleared, 1);
}
