// Composite-grid FMG Poisson solver: manufactured-solution convergence on
// uniform and refined hierarchies, bounded cycle counts at tight rtol,
// bit-identity across backends / aggregation on-off / split-phase halos,
// and the coarse-aggregation counters. The Castro integration half at the
// bottom exercises GravityType::PoissonAmr end to end: single-level
// equivalence with the existing Poisson path, amr-blast with gravity
// across a regrid, and rank-failure recovery bit-identity.

#include "castro/castro_amr.hpp"
#include "castro/wd_collision.hpp"
#include "comm/halo_handle.hpp"
#include "core/executor.hpp"
#include "core/fault.hpp"
#include "core/parallel_for.hpp"
#include "microphysics/network.hpp"
#include "resilience/adapters.hpp"
#include "resilience/supervisor.hpp"
#include "solvers/mg/composite_mg.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

using namespace exa;

namespace {

constexpr Real pi = constants::pi;

struct Hier {
    std::vector<Geometry> geoms;
    std::vector<BoxArray> bas;
    std::vector<DistributionMapping> dms;
    std::vector<MultiFab> phi, rhs, exact;
};

// One- or two-level hierarchy on the unit cube with a product-of-sines
// manufactured solution. Two-level: the central half of the domain is
// refined by 2 (a genuine partial-coverage level with coarse-fine faces
// on all six sides).
Hier makeHier(int n, bool refined, bool dirichlet, int nranks = 4,
              int max_grid = 8) {
    Hier h;
    const Box dom({0, 0, 0}, {n - 1, n - 1, n - 1});
    const IntVect per = dirichlet ? IntVect{0, 0, 0} : IntVect{1, 1, 1};
    h.geoms.emplace_back(dom, std::array<Real, 3>{0, 0, 0},
                         std::array<Real, 3>{1, 1, 1}, per);
    BoxArray ba0(dom);
    ba0.maxSize(max_grid);
    h.bas.push_back(ba0);
    h.dms.emplace_back(ba0, nranks);
    if (refined) {
        const Box fine = refine(Box({n / 4, n / 4, n / 4},
                                    {3 * n / 4 - 1, 3 * n / 4 - 1,
                                     3 * n / 4 - 1}),
                                2);
        h.geoms.push_back(h.geoms[0].refined(2));
        BoxArray ba1(fine);
        ba1.maxSize(max_grid);
        h.bas.push_back(ba1);
        h.dms.emplace_back(ba1, nranks);
    }
    const Real k = dirichlet ? pi : 2.0 * pi;
    for (std::size_t lev = 0; lev < h.geoms.size(); ++lev) {
        h.phi.emplace_back(h.bas[lev], h.dms[lev], 1, 1);
        h.rhs.emplace_back(h.bas[lev], h.dms[lev], 1, 0);
        h.exact.emplace_back(h.bas[lev], h.dms[lev], 1, 0);
        h.phi[lev].setVal(0.0);
        const Geometry g = h.geoms[lev];
        for (std::size_t i = 0; i < h.rhs[lev].size(); ++i) {
            auto r = h.rhs[lev].array(static_cast<int>(i));
            auto e = h.exact[lev].array(static_cast<int>(i));
            ParallelFor(h.rhs[lev].box(static_cast<int>(i)),
                        [=](int ii, int j, int kk) {
                const Real u = std::sin(k * g.cellCenter(0, ii)) *
                               std::sin(k * g.cellCenter(1, j)) *
                               std::sin(k * g.cellCenter(2, kk));
                e(ii, j, kk) = u;
                r(ii, j, kk) = -3.0 * k * k * u;
            });
        }
    }
    return h;
}

CompositeMgResult solveHier(Hier& h, MgBC bc, CompositeMgOptions opt = {}) {
    opt.nranks = h.dms[0].numRanks();
    CompositeMg mg(h.geoms, h.bas, h.dms, 2, bc, opt);
    std::vector<MultiFab*> phi;
    std::vector<const MultiFab*> rhs;
    for (std::size_t lev = 0; lev < h.phi.size(); ++lev) {
        phi.push_back(&h.phi[lev]);
        rhs.push_back(&h.rhs[lev]);
    }
    return mg.solve(phi, rhs);
}

// Valid-region boxes of level `lev` not covered by level lev+1.
std::vector<Box> uncoveredBoxes(const Hier& h, std::size_t lev,
                                std::size_t fab) {
    std::vector<Box> rem{h.bas[lev][static_cast<int>(fab)]};
    if (lev + 1 < h.bas.size()) {
        for (const Box& fb : h.bas[lev + 1].boxes()) {
            const Box cb = coarsen(fb, 2);
            std::vector<Box> next;
            for (const Box& b : rem) {
                const auto diff = boxDiff(b, cb);
                next.insert(next.end(), diff.begin(), diff.end());
            }
            rem.swap(next);
        }
    }
    return rem;
}

// Volume-weighted composite L2 error against the manufactured solution
// (finest data wins on covered regions).
Real compositeL2Error(const Hier& h) {
    Real sum = 0.0, vol = 0.0;
    for (std::size_t lev = 0; lev < h.phi.size(); ++lev) {
        const Real v = h.geoms[lev].cellVolume();
        for (std::size_t q = 0; q < h.phi[lev].size(); ++q) {
            auto a = h.phi[lev].const_array(static_cast<int>(q));
            auto e = h.exact[lev].const_array(static_cast<int>(q));
            for (const Box& b : uncoveredBoxes(h, lev, q)) {
                for (int k = b.smallEnd(2); k <= b.bigEnd(2); ++k)
                    for (int j = b.smallEnd(1); j <= b.bigEnd(1); ++j)
                        for (int i = b.smallEnd(0); i <= b.bigEnd(0); ++i) {
                            const Real d = a(i, j, k) - e(i, j, k);
                            sum += d * d * v;
                            vol += v;
                        }
            }
        }
    }
    return std::sqrt(sum / vol);
}

void hashMfInto(std::uint64_t& h, const MultiFab& mf) {
    auto mix = [&h](Real x) {
        std::uint64_t bits;
        std::memcpy(&bits, &x, sizeof(bits));
        for (int b = 0; b < 8; ++b) {
            h ^= (bits >> (8 * b)) & 0xffULL;
            h *= 1099511628211ULL;
        }
    };
    for (std::size_t q = 0; q < mf.size(); ++q) {
        auto a = mf.const_array(static_cast<int>(q));
        const Box& b = mf.box(static_cast<int>(q));
        for (int n = 0; n < mf.nComp(); ++n)
            for (int k = b.smallEnd(2); k <= b.bigEnd(2); ++k)
                for (int j = b.smallEnd(1); j <= b.bigEnd(1); ++j)
                    for (int i = b.smallEnd(0); i <= b.bigEnd(0); ++i)
                        mix(a(i, j, k, n));
    }
}

std::uint64_t hashLevels(const std::vector<MultiFab>& mfs) {
    std::uint64_t h = 1469598103934665603ULL;
    for (const MultiFab& mf : mfs) hashMfInto(h, mf);
    return h;
}

} // namespace

TEST(CompositeMg, UniformDirichletSecondOrder) {
    Hier h16 = makeHier(16, false, true);
    Hier h32 = makeHier(32, false, true);
    auto r16 = solveHier(h16, MgBC::Dirichlet);
    auto r32 = solveHier(h32, MgBC::Dirichlet);
    ASSERT_TRUE(r16.converged);
    ASSERT_TRUE(r32.converged);
    const Real e16 = compositeL2Error(h16);
    const Real e32 = compositeL2Error(h32);
    EXPECT_GT(e16 / e32, 3.0);
    EXPECT_LT(e16 / e32, 5.0);
}

TEST(CompositeMg, RefinedHierarchySecondOrder) {
    // The composite solve must stay second order with a partial-coverage
    // fine level in the middle of the domain — the coarse-fine interface
    // interpolation and flux corrections are what this certifies.
    Hier h16 = makeHier(16, true, true);
    Hier h32 = makeHier(32, true, true);
    auto r16 = solveHier(h16, MgBC::Dirichlet);
    auto r32 = solveHier(h32, MgBC::Dirichlet);
    ASSERT_TRUE(r16.converged);
    ASSERT_TRUE(r32.converged);
    const Real e16 = compositeL2Error(h16);
    const Real e32 = compositeL2Error(h32);
    EXPECT_GT(e16 / e32, 3.0);
    EXPECT_LT(e16 / e32, 5.0);
}

TEST(CompositeMg, RefinedPeriodicConverges) {
    Hier h = makeHier(32, true, false);
    auto r = solveHier(h, MgBC::Periodic);
    EXPECT_TRUE(r.converged);
    // Periodic solution is defined up to a constant; the solver removes
    // the composite mean and the sin product has zero mean, so compare
    // directly (loose bound: coarse level is 32^3).
    EXPECT_LT(compositeL2Error(h), 2e-2);
}

TEST(CompositeMg, TightToleranceBoundedCycles) {
    Hier h = makeHier(32, true, true);
    CompositeMgOptions opt;
    opt.rtol = 1e-10;
    auto r = solveHier(h, MgBC::Dirichlet, opt);
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.final_resnorm, 1e-10 * std::max(r.initial_resnorm, Real(1.0)));
    EXPECT_EQ(r.fmg_cycles, 1);
    EXPECT_LE(r.vcycles, 25); // FMG start + healthy V-cycle contraction
    EXPECT_GT(r.sweeps, 0);
}

TEST(CompositeMg, ZeroRhsKeepsZeroSolution) {
    Hier h = makeHier(16, true, true);
    for (auto& r : h.rhs) r.setVal(0.0);
    auto res = solveHier(h, MgBC::Dirichlet);
    EXPECT_TRUE(res.converged);
    for (auto& p : h.phi) EXPECT_LT(p.norminf(0), 1e-12);
}

TEST(CompositeMg, BitIdenticalAcrossBackends) {
    std::vector<std::uint64_t> hashes;
    for (Backend b : {Backend::Serial, Backend::OpenMP, Backend::SimGpu,
                      Backend::Debug}) {
        ScopedBackend backend(b);
        Hier h = makeHier(16, true, true);
        CompositeMgOptions opt;
        opt.rtol = 1e-10;
        auto r = solveHier(h, MgBC::Dirichlet, opt);
        EXPECT_TRUE(r.converged);
        hashes.push_back(hashLevels(h.phi));
    }
    for (std::size_t i = 1; i < hashes.size(); ++i)
        EXPECT_EQ(hashes[0], hashes[i]) << "backend " << i;
}

TEST(CompositeMg, AggregationOnOffBitIdentical) {
    // Coarse-level rank aggregation relayouts geometric rungs only; the
    // answer (and every intermediate, since restriction stages through
    // averaged fabs with identical arithmetic) must not move by a bit.
    std::uint64_t hon = 0, hoff = 0;
    {
        Hier h = makeHier(32, true, true, /*nranks=*/8);
        CompositeMgOptions opt;
        opt.aggregate_coarse = true;
        opt.agg_zones_per_rank = 4096;
        opt.nranks = 8;
        CompositeMg mg(h.geoms, h.bas, h.dms, 2, MgBC::Dirichlet, opt);
        EXPECT_GT(mg.aggregatedRungs(), 0);
        std::vector<MultiFab*> phi{&h.phi[0], &h.phi[1]};
        std::vector<const MultiFab*> rhs{&h.rhs[0], &h.rhs[1]};
        auto r = mg.solve(phi, rhs);
        EXPECT_TRUE(r.converged);
        EXPECT_GT(r.agg_copies, 0);
        EXPECT_GT(r.agg_bytes, 0);
        hon = hashLevels(h.phi);
    }
    {
        Hier h = makeHier(32, true, true, /*nranks=*/8);
        CompositeMgOptions opt;
        opt.aggregate_coarse = false;
        opt.nranks = 8;
        CompositeMg mg(h.geoms, h.bas, h.dms, 2, MgBC::Dirichlet, opt);
        EXPECT_EQ(mg.aggregatedRungs(), 0);
        std::vector<MultiFab*> phi{&h.phi[0], &h.phi[1]};
        std::vector<const MultiFab*> rhs{&h.rhs[0], &h.rhs[1]};
        auto r = mg.solve(phi, rhs);
        EXPECT_TRUE(r.converged);
        EXPECT_EQ(r.agg_copies, 0);
        EXPECT_EQ(r.agg_bytes, 0);
        hoff = hashLevels(h.phi);
    }
    EXPECT_EQ(hon, hoff);
}

TEST(CompositeMg, SplitPhaseHalosBitIdentical) {
    // Every smoother half-sweep posts its exchange and overlaps interior
    // zones when asyncHalo is on; the result must match the fused path.
    std::uint64_t hsplit = 0, hfused = 0;
    {
        comm::ScopedAsyncHalo async(true);
        Hier h = makeHier(16, true, true);
        auto r = solveHier(h, MgBC::Dirichlet);
        EXPECT_TRUE(r.converged);
        hsplit = hashLevels(h.phi);
    }
    {
        comm::ScopedAsyncHalo async(false);
        Hier h = makeHier(16, true, true);
        auto r = solveHier(h, MgBC::Dirichlet);
        EXPECT_TRUE(r.converged);
        hfused = hashLevels(h.phi);
    }
    EXPECT_EQ(hsplit, hfused);
}

TEST(CompositeMg, RepeatSolveIsDeterministic) {
    // Solves are cold (pure function of the rhs): the second solve on the
    // same object must reproduce the first bit for bit.
    Hier h = makeHier(16, true, true);
    CompositeMg mg(h.geoms, h.bas, h.dms, 2, MgBC::Dirichlet, {});
    std::vector<MultiFab*> phi{&h.phi[0], &h.phi[1]};
    std::vector<const MultiFab*> rhs{&h.rhs[0], &h.rhs[1]};
    auto r1 = mg.solve(phi, rhs);
    const std::uint64_t h1 = hashLevels(h.phi);
    auto r2 = mg.solve(phi, rhs);
    const std::uint64_t h2 = hashLevels(h.phi);
    EXPECT_TRUE(r1.converged);
    EXPECT_EQ(r1.vcycles, r2.vcycles);
    EXPECT_EQ(h1, h2);
}

// ---------------------------------------------------------------------
// Castro integration: GravityType::PoissonAmr
// ---------------------------------------------------------------------

namespace {

struct TmpDir {
    std::string path;
    explicit TmpDir(const std::string& name)
        : path(std::string("/tmp/exastro_gravity_") + name) {
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }
    ~TmpDir() { std::filesystem::remove_all(path); }
};

// Max |x - y| over valid regions, relative to max |x| (component-wise
// union). Layouts must match.
Real relLinfDiff(const MultiFab& x, const MultiFab& y) {
    Real num = 0.0, den = 0.0;
    for (std::size_t q = 0; q < x.size(); ++q) {
        auto a = x.const_array(static_cast<int>(q));
        auto b = y.const_array(static_cast<int>(q));
        const Box& bx = x.box(static_cast<int>(q));
        for (int n = 0; n < x.nComp(); ++n)
            for (int k = bx.smallEnd(2); k <= bx.bigEnd(2); ++k)
                for (int j = bx.smallEnd(1); j <= bx.bigEnd(1); ++j)
                    for (int i = bx.smallEnd(0); i <= bx.bigEnd(0); ++i) {
                        num = std::max(num, std::abs(a(i, j, k, n) -
                                                     b(i, j, k, n)));
                        den = std::max(den, std::abs(a(i, j, k, n)));
                    }
    }
    return den > 0.0 ? num / den : num;
}

std::uint64_t hashAmrState(const castro::CastroAmr& a) {
    std::uint64_t h = 1469598103934665603ULL;
    for (int lev = 0; lev <= a.finestLevel(); ++lev)
        hashMfInto(h, a.state(lev));
    return h;
}

struct GravityBlast {
    ReactionNetwork net = makeIgnitionSimple();
    std::unique_ptr<castro::CastroAmr> amr;
};

// The AMR blast of the subcycle/resilience suites with composite-grid
// self-gravity switched on: tags follow the hot region, so regrids move
// the fine level mid-run and the gravity solver has to rebuild its
// ladder (noteRegrid) without perturbing the trajectory.
GravityBlast makeGravityBlast(int ncell = 16) {
    GravityBlast b;
    const Box dom({0, 0, 0}, {ncell - 1, ncell - 1, ncell - 1});
    const Geometry geom(dom, {0, 0, 0}, {1, 1, 1}, IntVect{0, 0, 0});
    AmrInfo info;
    info.max_level = 1;
    info.ref_ratio = 2;
    info.max_grid_size = 8;
    info.blocking_factor = 4;
    info.n_error_buf = 1;
    info.nranks = 4;

    castro::CastroOptions opt;
    opt.bc = DomainBC::allOutflow();
    opt.cfl = 0.3;
    opt.gravity = castro::GravityType::PoissonAmr;
    opt.guard.enabled = true;
    opt.guard.verbose = false;

    const Real r_init = 2.0 / ncell;
    const Real e_in =
        1.0 / ((4.0 / 3.0) * constants::pi * r_init * r_init * r_init);
    castro::Castro::InitFn init = [=](Real x, Real y, Real z) {
        castro::Castro::InitialZone zn;
        zn.rho = 1.0;
        const Real r = std::sqrt((x - 0.5) * (x - 0.5) +
                                 (y - 0.5) * (y - 0.5) +
                                 (z - 0.5) * (z - 0.5));
        zn.p = r <= r_init ? 0.4 * e_in : 1.0e-5;
        zn.X = {1.0, 0.0};
        return zn;
    };
    castro::CastroAmr::TagFn tag = [](int /*lev*/, const Geometry&,
                                      const MultiFab& s, MultiFab& tags) {
        const Real thresh = 1.0e-8;
        for (std::size_t f = 0; f < tags.size(); ++f) {
            auto t = tags.array(static_cast<int>(f));
            auto u = s.const_array(static_cast<int>(f));
            ParallelFor(tags.box(static_cast<int>(f)),
                        [=](int i, int j, int k) {
                if (u(i, j, k, castro::StateLayout::UTEMP) > thresh)
                    t(i, j, k) = 1.0;
            });
        }
    };

    Eos eos{GammaLawEos{1.4}};
    b.amr = std::make_unique<castro::CastroAmr>(geom, info, b.net, eos, opt,
                                                std::move(init),
                                                std::move(tag));
    b.amr->regrid_interval = 2;
    b.amr->init();
    return b;
}

} // namespace

TEST(GravityAmr, SingleLevelPoissonAmrMatchesPoisson) {
    // On a one-level hierarchy the composite solver degenerates to the
    // existing single-level FMG path: same 7-point operator, same
    // far-field Dirichlet boundary. The WD collision run with
    // GravityType::PoissonAmr must track GravityType::Poisson to solver
    // tolerance (rtols differ: 1e-10 composite vs the single-level
    // default), both in the potential's acceleration field and in the
    // evolved state.
    const auto net = makeIso7();
    castro::WdCollisionParams p;
    p.ncell = 16;
    p.max_grid_size = 8;
    p.nranks = 4;
    p.do_react = false;
    p.gravity = castro::GravityType::Poisson;
    castro::WdCollision ref = p.build(net);
    p.gravity = castro::GravityType::PoissonAmr;
    castro::WdCollision amr = p.build(net);

    for (int i = 0; i < 3; ++i) {
        const Real dt = ref.castro->estimateDt();
        ref.castro->step(dt);
        amr.castro->step(dt);
    }
    EXPECT_LT(relLinfDiff(ref.castro->gravity().accel(),
                          amr.castro->gravity().accel()),
              1.0e-6);
    EXPECT_LT(relLinfDiff(ref.castro->state(), amr.castro->state()), 1.0e-6);
    EXPECT_GT(amr.castro->gravity().mgTotals().vcycles, 0);
}

TEST(GravityAmr, BlastAcrossRegridBitIdenticalAcrossBackends) {
    // Five steps at regrid_interval 2: the hierarchy regrids mid-run, the
    // composite ladder rebuilds, and the final state must be bit-identical
    // on every backend — and on a repeat run of the same backend.
    std::vector<std::uint64_t> hashes;
    std::int64_t vcycles = 0;
    for (Backend bk : {Backend::Serial, Backend::Serial, Backend::OpenMP,
                       Backend::SimGpu, Backend::Debug}) {
        ScopedBackend backend(bk);
        GravityBlast b = makeGravityBlast();
        for (int i = 0; i < 5; ++i) b.amr->step(b.amr->estimateDt());
        ASSERT_GT(b.amr->finestLevel(), 0);
        hashes.push_back(hashAmrState(*b.amr));
        vcycles = b.amr->mgTotals().vcycles;
    }
    EXPECT_GT(vcycles, 0);
    for (std::size_t i = 1; i < hashes.size(); ++i)
        EXPECT_EQ(hashes[0], hashes[i]) << "run " << i;
}

TEST(GravityAmr, RankFailureRecoveryBitIdentical) {
    // A supervised run that loses a rank after gravity-coupled steps and
    // regrids must replay to exactly the bytes of an uninterrupted run:
    // solves are cold (resetPoissonWarmStart is a no-op on the composite
    // path, phi is not part of the trajectory), so restore + replay
    // re-derives every potential bit for bit. The supervisor's summary
    // carries the lifetime multigrid counters.
    fault::disarmAll();
    const int nsteps = 6;

    GravityBlast baseline = makeGravityBlast();
    for (int i = 0; i < nsteps; ++i)
        baseline.amr->step(baseline.amr->estimateDt());

    TmpDir tmp("rank_failure");
    GravityBlast survivor = makeGravityBlast();
    resilience::SupervisorOptions opt;
    opt.checkpoint.dir = tmp.path;
    // Checkpoint at step 0 only (next due at 6): the kill at heartbeat 4
    // sees grids regridded since, forcing remake-on-restore before the
    // gravity ladder is rebuilt for replay.
    opt.checkpoint.interval_hint = 6;
    opt.nranks = 4;
    resilience::ResilienceSupervisor sup(
        resilience::makeSupervisedDriver(*survivor.amr), opt);
    {
        fault::Spec s;
        s.start = 4;
        fault::ScopedFault kill(fault::Site::RankFailure, s);
        sup.runSteps(nsteps);
    }
    EXPECT_EQ(sup.report().ranks_recovered, 1);
    EXPECT_GT(sup.report().replay_steps, 0);

    ASSERT_EQ(survivor.amr->finestLevel(), baseline.amr->finestLevel());
    EXPECT_EQ(hashAmrState(*survivor.amr), hashAmrState(*baseline.amr));
    EXPECT_EQ(survivor.amr->time(), baseline.amr->time());

    const std::string summary = sup.summary();
    EXPECT_NE(summary.find("mg:"), std::string::npos) << summary;
    fault::disarmAll();
}
