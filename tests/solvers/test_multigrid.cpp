#include "core/parallel_for.hpp"
#include "solvers/multigrid.hpp"

#include <gtest/gtest.h>

#include <cmath>

using namespace exa;

namespace {

constexpr Real pi = constants::pi;

struct Problem {
    MultiFab phi, rhs, exact;
    Geometry geom;
};

// Build phi/rhs/exact for Laplacian(phi) = rhs with a product-of-sines
// exact solution. kmode controls the wavenumber; dirichlet selects
// sin(pi x) (zero on faces) vs sin(2 pi x) (periodic).
Problem makeProblem(int n, bool dirichlet, int nranks = 2, int max_grid = 16) {
    Problem p;
    Box dom({0, 0, 0}, {n - 1, n - 1, n - 1});
    IntVect per = dirichlet ? IntVect{0, 0, 0} : IntVect{1, 1, 1};
    p.geom = Geometry(dom, {0, 0, 0}, {1, 1, 1}, per);
    BoxArray ba(dom);
    ba.maxSize(max_grid);
    DistributionMapping dm(ba, nranks);
    p.phi.define(ba, dm, 1, 1);
    p.rhs.define(ba, dm, 1, 0);
    p.exact.define(ba, dm, 1, 0);
    p.phi.setVal(0.0);
    const Real k = dirichlet ? pi : 2.0 * pi;
    for (std::size_t i = 0; i < p.rhs.size(); ++i) {
        auto r = p.rhs.array(static_cast<int>(i));
        auto e = p.exact.array(static_cast<int>(i));
        const Geometry g = p.geom;
        ParallelFor(p.rhs.box(static_cast<int>(i)), [=](int ii, int j, int kk) {
            const Real x = g.cellCenter(0, ii);
            const Real y = g.cellCenter(1, j);
            const Real z = g.cellCenter(2, kk);
            const Real u = std::sin(k * x) * std::sin(k * y) * std::sin(k * z);
            e(ii, j, kk) = u;
            r(ii, j, kk) = -3.0 * k * k * u;
        });
    }
    return p;
}

Real solutionError(const Problem& p) {
    Real err = 0;
    for (std::size_t i = 0; i < p.phi.size(); ++i) {
        auto a = p.phi.const_array(static_cast<int>(i));
        auto e = p.exact.const_array(static_cast<int>(i));
        const Box& vb = p.phi.box(static_cast<int>(i));
        err = std::max(err, ParallelReduceMax(vb, [=](int ii, int j, int k) {
                           return std::abs(a(ii, j, k) - e(ii, j, k));
                       }));
    }
    return err;
}

} // namespace

TEST(Multigrid, BuildsFullHierarchy) {
    Geometry g(Box({0, 0, 0}, {63, 63, 63}), {0, 0, 0}, {1, 1, 1}, IntVect{1, 1, 1});
    Multigrid mg(g, MgBC::Periodic);
    // 64 -> 32 -> 16 -> 8 -> 4 -> 2: six levels.
    EXPECT_EQ(mg.numLevels(), 6);
    EXPECT_EQ(mg.levelGeom(5).domain().length(0), 2);
}

TEST(Multigrid, SolvesPeriodicPoisson) {
    Problem p = makeProblem(32, /*dirichlet=*/false);
    Multigrid mg(p.geom, MgBC::Periodic);
    auto res = mg.solve(p.phi, p.rhs);
    EXPECT_TRUE(res.converged);
    EXPECT_LT(res.final_resnorm, 1e-9 * res.initial_resnorm + 1e-8);
    // Discretization error: O(h^2) ~ (2pi/32)^2/12 * |phi''''| ... loose bound.
    EXPECT_LT(solutionError(p), 2e-2);
}

TEST(Multigrid, SolvesDirichletPoisson) {
    Problem p = makeProblem(32, /*dirichlet=*/true);
    Multigrid mg(p.geom, MgBC::Dirichlet);
    auto res = mg.solve(p.phi, p.rhs);
    EXPECT_TRUE(res.converged);
    EXPECT_LT(solutionError(p), 1e-2);
}

TEST(Multigrid, SecondOrderConvergence) {
    // Error should fall ~4x when resolution doubles.
    Problem p16 = makeProblem(16, true);
    Problem p32 = makeProblem(32, true);
    Multigrid mg16(p16.geom, MgBC::Dirichlet);
    Multigrid mg32(p32.geom, MgBC::Dirichlet);
    mg16.solve(p16.phi, p16.rhs);
    mg32.solve(p32.phi, p32.rhs);
    const Real e16 = solutionError(p16);
    const Real e32 = solutionError(p32);
    EXPECT_GT(e16 / e32, 3.0);
    EXPECT_LT(e16 / e32, 5.0);
}

TEST(Multigrid, FastResidualReduction) {
    // A healthy V-cycle knocks the residual down by >~5x per cycle.
    Problem p = makeProblem(32, false);
    Multigrid::Options opt;
    opt.rtol = 1e-11;
    Multigrid mg(p.geom, MgBC::Periodic, opt);
    auto res = mg.solve(p.phi, p.rhs);
    ASSERT_TRUE(res.converged);
    const double per_cycle =
        std::pow(res.final_resnorm / res.initial_resnorm, 1.0 / res.vcycles);
    EXPECT_LT(per_cycle, 0.2);
    EXPECT_LE(res.vcycles, 20);
}

TEST(Multigrid, NeumannWithZeroMeanRhs) {
    // cos modes satisfy homogeneous Neumann BCs at cell faces... use
    // cos(pi x)cos(pi y)cos(pi z); zero mean over the cube.
    const int n = 32;
    Box dom({0, 0, 0}, {n - 1, n - 1, n - 1});
    Geometry geom(dom, {0, 0, 0}, {1, 1, 1});
    BoxArray ba(dom);
    ba.maxSize(16);
    DistributionMapping dm(ba, 2);
    MultiFab phi(ba, dm, 1, 1), rhs(ba, dm, 1, 0), exact(ba, dm, 1, 0);
    phi.setVal(0.0);
    for (std::size_t i = 0; i < rhs.size(); ++i) {
        auto r = rhs.array(static_cast<int>(i));
        auto e = exact.array(static_cast<int>(i));
        ParallelFor(rhs.box(static_cast<int>(i)), [=, &geom](int ii, int j, int kk) {
            const Real u = std::cos(pi * geom.cellCenter(0, ii)) *
                           std::cos(pi * geom.cellCenter(1, j)) *
                           std::cos(pi * geom.cellCenter(2, kk));
            e(ii, j, kk) = u;
            r(ii, j, kk) = -3.0 * pi * pi * u;
        });
    }
    Multigrid mg(geom, MgBC::Neumann);
    auto res = mg.solve(phi, rhs);
    EXPECT_TRUE(res.converged);
    // Solution is defined up to a constant; both phi and exact have zero
    // mean (cos integrates to zero), so compare directly.
    Real err = 0;
    for (std::size_t i = 0; i < phi.size(); ++i) {
        auto a = phi.const_array(static_cast<int>(i));
        auto e = exact.const_array(static_cast<int>(i));
        err = std::max(err, ParallelReduceMax(phi.box(static_cast<int>(i)),
                                              [=](int ii, int j, int k) {
                                                  return std::abs(a(ii, j, k) - e(ii, j, k));
                                              }));
    }
    EXPECT_LT(err, 2e-2);
}

TEST(Multigrid, ZeroRhsKeepsZeroSolution) {
    Problem p = makeProblem(16, true);
    p.rhs.setVal(0.0);
    Multigrid mg(p.geom, MgBC::Dirichlet);
    auto res = mg.solve(p.phi, p.rhs);
    EXPECT_TRUE(res.converged);
    EXPECT_LT(p.phi.norminf(0), 1e-12);
}

TEST(Multigrid, ApplyMatchesAnalyticLaplacian) {
    // Laplacian of a quadratic is exact for the 7-point stencil.
    const int n = 16;
    Box dom({0, 0, 0}, {n - 1, n - 1, n - 1});
    Geometry geom(dom, {0, 0, 0}, {1, 1, 1}, IntVect{1, 1, 1});
    BoxArray ba(dom);
    ba.maxSize(8);
    DistributionMapping dm(ba, 2);
    MultiFab phi(ba, dm, 1, 1), out(ba, dm, 1, 0);
    for (std::size_t i = 0; i < phi.size(); ++i) {
        auto a = phi.array(static_cast<int>(i));
        ParallelFor(grow(phi.box(static_cast<int>(i)), 1), [=](int ii, int j, int k) {
            a(ii, j, k) = ii * ii + 2.0 * j * j - k * static_cast<Real>(k);
        });
    }
    Multigrid mg(geom, MgBC::Periodic);
    mg.apply(phi, out);
    // Interior zones (not affected by the periodic wrap of the
    // non-periodic quadratic): Laplacian = (2 + 4 - 2)/h^2 with h = 1/16.
    auto a = out.const_array(0);
    const Box interior = grow(out.box(0), -1) & grow(dom, -1);
    const Real expect = 4.0 * n * n;
    for (int k = interior.smallEnd(2); k <= interior.bigEnd(2); ++k)
        for (int j = interior.smallEnd(1); j <= interior.bigEnd(1); ++j)
            for (int i = interior.smallEnd(0); i <= interior.bigEnd(0); ++i)
                ASSERT_NEAR(a(i, j, k), expect, 1e-8);
}

TEST(Multigrid, SweepCounterAdvances) {
    Problem p = makeProblem(16, false);
    Multigrid mg(p.geom, MgBC::Periodic);
    EXPECT_EQ(mg.totalSweeps(), 0);
    mg.solve(p.phi, p.rhs);
    EXPECT_GT(mg.totalSweeps(), 0);
}
