#include "microphysics/linalg.hpp"
#include "microphysics/network.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

using namespace exa;

namespace {

DenseMatrix randomMatrix(int n, unsigned seed, double diag_boost = 3.0) {
    std::mt19937 gen(seed);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    DenseMatrix a(n);
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) a(i, j) = u(gen);
        a(i, i) += diag_boost; // well-conditioned
    }
    return a;
}

std::vector<Real> matvec(const DenseMatrix& a, const std::vector<Real>& x) {
    const int n = a.size();
    std::vector<Real> b(n, 0.0);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j) b[i] += a(i, j) * x[j];
    return b;
}

} // namespace

TEST(DenseLU, SolvesRandomSystems) {
    for (int n : {1, 2, 5, 14, 30}) {
        DenseMatrix a = randomMatrix(n, 42 + n);
        std::vector<Real> x(n);
        for (int i = 0; i < n; ++i) x[i] = std::sin(i + 1.0);
        auto b = matvec(a, x);
        DenseLU lu;
        ASSERT_TRUE(lu.factor(a));
        lu.solve(b);
        for (int i = 0; i < n; ++i) EXPECT_NEAR(b[i], x[i], 1e-10);
    }
}

TEST(DenseLU, PivotingHandlesZeroDiagonal) {
    DenseMatrix a(2);
    a(0, 0) = 0.0;
    a(0, 1) = 1.0;
    a(1, 0) = 1.0;
    a(1, 1) = 0.0;
    std::vector<Real> b = {3.0, 7.0}; // x = (7, 3)
    DenseLU lu;
    ASSERT_TRUE(lu.factor(a));
    lu.solve(b);
    EXPECT_DOUBLE_EQ(b[0], 7.0);
    EXPECT_DOUBLE_EQ(b[1], 3.0);
}

TEST(DenseLU, DetectsSingularity) {
    DenseMatrix a(2);
    a(0, 0) = 1.0;
    a(0, 1) = 2.0;
    a(1, 0) = 2.0;
    a(1, 1) = 4.0;
    DenseLU lu;
    EXPECT_FALSE(lu.factor(a));
}

TEST(DenseMatrix, ScaleAndAddIdentity) {
    DenseMatrix a(2);
    a(0, 0) = 2.0;
    a(0, 1) = 1.0;
    a(1, 0) = -1.0;
    a(1, 1) = 3.0;
    a.scaleAndAddIdentity(1.0, -0.5); // I - 0.5*A
    EXPECT_DOUBLE_EQ(a(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(a(0, 1), -0.5);
    EXPECT_DOUBLE_EQ(a(1, 0), 0.5);
    EXPECT_DOUBLE_EQ(a(1, 1), -0.5);
}

TEST(SparseLU, MatchesDenseOnFullPattern) {
    const int n = 8;
    DenseMatrix a = randomMatrix(n, 7);
    std::vector<char> pattern(n * n, 1);
    SparseLU slu;
    slu.analyze(n, pattern);
    EXPECT_EQ(slu.numNonzeros(), n * n);
    std::vector<Real> x(n);
    for (int i = 0; i < n; ++i) x[i] = i + 1.0;
    auto b = matvec(a, x);
    ASSERT_TRUE(slu.factor(a));
    slu.solve(b);
    for (int i = 0; i < n; ++i) EXPECT_NEAR(b[i], x[i], 1e-10);
}

TEST(SparseLU, TridiagonalPatternStaysSparse) {
    const int n = 20;
    std::vector<char> pattern(n * n, 0);
    DenseMatrix a(n);
    for (int i = 0; i < n; ++i) {
        for (int j = std::max(0, i - 1); j <= std::min(n - 1, i + 1); ++j) {
            pattern[i * n + j] = 1;
            a(i, j) = (i == j) ? 4.0 : -1.0;
        }
    }
    SparseLU slu;
    slu.analyze(n, pattern);
    // Tridiagonal has no fill-in: nnz = 3n - 2.
    EXPECT_EQ(slu.numNonzeros(), 3 * n - 2);
    EXPECT_GT(slu.emptyFraction(), 0.8);
    std::vector<Real> x(n, 1.0), b = matvec(a, x);
    ASSERT_TRUE(slu.factor(a));
    slu.solve(b);
    for (int i = 0; i < n; ++i) EXPECT_NEAR(b[i], 1.0, 1e-12);
}

TEST(SparseLU, Aprox13JacobianPatternMatchesDense) {
    // Factor/solve an actual aprox13 Newton matrix both ways.
    auto net = makeAprox13();
    const int n = net.nspec() + 1;
    std::vector<Real> X(net.nspec(), 0.0);
    X[0] = 0.2; // he4
    X[1] = 0.4; // c12
    X[2] = 0.4; // o16
    std::vector<Real> Y(net.nspec());
    net.xToY(X.data(), Y.data());
    DenseMatrix J(n);
    net.jacobian(2.0e7, 3.0e9, Y.data(), 1.0e7, J);
    DenseMatrix M = J;
    M.scaleAndAddIdentity(1.0, -1.0e-9); // I - h*g*J, strongly diagonal

    SparseLU slu;
    slu.analyze(n, net.sparsity());
    ASSERT_TRUE(slu.factor(M));
    DenseLU dlu;
    ASSERT_TRUE(dlu.factor(M));

    std::vector<Real> b1(n), b2(n);
    for (int i = 0; i < n; ++i) b1[i] = b2[i] = std::cos(0.7 * i);
    slu.solve(b1);
    dlu.solve(b2);
    for (int i = 0; i < n; ++i) EXPECT_NEAR(b1[i], b2[i], 1e-9 * (std::abs(b2[i]) + 1));
}

TEST(SparseLU, Aprox13PatternIsAboutFortyPercentEmpty) {
    // Section VI: "about 40% of the dense matrix [is] empty" for the
    // 13-isotope network. Ours is somewhat sparser (~60% empty) because
    // the reverse/effective (a,p)(p,g) channels are omitted; the point —
    // a large fixed-pattern saving over dense — holds.
    auto net = makeAprox13();
    SparseLU slu;
    slu.analyze(net.nspec() + 1, net.sparsity());
    EXPECT_GT(slu.emptyFraction(), 0.35);
    EXPECT_LT(slu.emptyFraction(), 0.70);
}

TEST(SparseLU, FactorOpsBelowDense) {
    auto net = makeAprox13();
    const int n = net.nspec() + 1;
    SparseLU slu;
    slu.analyze(n, net.sparsity());
    // Dense LU ~ n^3/3 multiply-adds.
    const std::int64_t dense_ops = static_cast<std::int64_t>(n) * n * n / 3;
    EXPECT_LT(slu.factorOps(), dense_ops);
}
