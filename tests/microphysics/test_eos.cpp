#include "microphysics/eos.hpp"

#include <gtest/gtest.h>

#include <cmath>

using namespace exa;

TEST(GammaLawEos, IdealGasRelations) {
    GammaLawEos eos{5.0 / 3.0};
    EosState s;
    s.rho = 1.0e-3;
    s.T = 1.0e4;
    s.abar = 1.0;
    s.ye = 1.0;
    eos.rhoT(s);
    // p = rho k T / (abar m_u)
    const Real p_expect = s.rho * constants::k_B * s.T / constants::m_u;
    EXPECT_NEAR(s.p / p_expect, 1.0, 1e-12);
    EXPECT_NEAR(s.e, 1.5 * p_expect / s.rho, 1e-3 * s.e);
    EXPECT_NEAR(s.gamma1, 5.0 / 3.0, 1e-10);
    EXPECT_NEAR(s.cs, std::sqrt(5.0 / 3.0 * s.p / s.rho), 1e-6 * s.cs);
}

TEST(GammaLawEos, RhoERoundTrip) {
    GammaLawEos eos{1.4};
    EosState s;
    s.rho = 2.5;
    s.T = 3.7e5;
    s.abar = 2.0;
    eos.rhoT(s);
    const Real p0 = s.p, T0 = s.T;
    EosState s2;
    s2.rho = s.rho;
    s2.e = s.e;
    s2.abar = s.abar;
    eos.rhoE(s2);
    EXPECT_NEAR(s2.T, T0, 1e-10 * T0);
    EXPECT_NEAR(s2.p, p0, 1e-10 * p0);
}

TEST(GammaLawEos, RhoPRoundTrip) {
    GammaLawEos eos{1.4};
    EosState s;
    s.rho = 0.1;
    s.p = 1.0e6;
    s.abar = 1.0;
    eos.rhoP(s);
    EXPECT_NEAR((1.4 - 1.0) * s.rho * s.e, 1.0e6, 1.0);
}

TEST(HelmLiteEos, NonRelativisticDegenerateLimit) {
    // At low density, P_deg -> K x^5 ~ rho^{5/3}: check the slope.
    const Real ye = 0.5;
    const Real p1 = HelmLiteEos::pDegenerate(1.0e2, ye);
    const Real p2 = HelmLiteEos::pDegenerate(2.0e2, ye);
    EXPECT_NEAR(std::log2(p2 / p1), 5.0 / 3.0, 0.02);
}

TEST(HelmLiteEos, RelativisticDegenerateLimit) {
    // At very high density, P_deg ~ rho^{4/3}.
    const Real ye = 0.5;
    const Real p1 = HelmLiteEos::pDegenerate(1.0e10, ye);
    const Real p2 = HelmLiteEos::pDegenerate(2.0e10, ye);
    EXPECT_NEAR(std::log2(p2 / p1), 4.0 / 3.0, 0.02);
}

TEST(HelmLiteEos, WhiteDwarfCentralPressureMagnitude) {
    // At rho = 2e6 g/cc (typical C/O WD interior), x ~ 1.01 and the
    // degenerate pressure is ~3e22 dyn/cm^2 (transition regime).
    const Real x = HelmLiteEos::xOf(2.0e6, 0.5);
    EXPECT_NEAR(x, 1.008, 0.02);
    const Real p = HelmLiteEos::pDegenerate(2.0e6, 0.5);
    EXPECT_GT(p, 5.0e21);
    EXPECT_LT(p, 1.0e23);
}

TEST(HelmLiteEos, PressureAlmostIndependentOfTemperature) {
    // The paper's instability mechanism: degenerate matter barely responds
    // to heating. At WD density, heating 1e7 -> 1e9 K changes P by < 10%.
    HelmLiteEos eos;
    EosState cold, hot;
    cold.rho = hot.rho = 2.0e7;
    cold.abar = hot.abar = 13.7; // C/O mix
    cold.ye = hot.ye = 0.5;
    cold.T = 1.0e7;
    hot.T = 1.0e9;
    eos.rhoT(cold);
    eos.rhoT(hot);
    EXPECT_LT((hot.p - cold.p) / cold.p, 0.10);
    EXPECT_GT(hot.p, cold.p);
}

TEST(HelmLiteEos, IonRadiationLimitAtLowDensity) {
    // Dilute gas: ions + radiation dominate the (zero-T) electron
    // degeneracy term.
    HelmLiteEos eos;
    EosState s;
    s.rho = 1.0e-6;
    s.T = 1.0e5;
    s.abar = 1.0;
    s.ye = 1.0;
    eos.rhoT(s);
    const Real p_ion = s.rho * constants::k_B * s.T / constants::m_u;
    const Real p_rad = constants::a_rad * std::pow(s.T, 4) / 3.0;
    EXPECT_NEAR(s.p / (p_ion + p_rad), 1.0, 0.05);
}

TEST(HelmLiteEos, RhoEInversionRoundTrip) {
    HelmLiteEos eos;
    for (Real rho : {1.0e3, 1.0e5, 2.0e6, 1.0e8}) {
        for (Real T : {1.0e7, 1.0e8, 2.0e9}) {
            EosState s;
            s.rho = rho;
            s.T = T;
            s.abar = 13.7;
            s.ye = 0.5;
            eos.rhoT(s);
            EosState inv;
            inv.rho = rho;
            inv.e = s.e;
            inv.abar = s.abar;
            inv.ye = s.ye;
            eos.rhoE(inv);
            ASSERT_NEAR(inv.T / T, 1.0, 1e-6) << "rho=" << rho << " T=" << T;
        }
    }
}

TEST(HelmLiteEos, RhoPInversionRoundTrip) {
    HelmLiteEos eos;
    EosState s;
    s.rho = 1.0e5;
    s.T = 5.0e8;
    s.abar = 13.7;
    s.ye = 0.5;
    eos.rhoT(s);
    EosState inv;
    inv.rho = s.rho;
    inv.p = s.p;
    inv.abar = s.abar;
    inv.ye = s.ye;
    eos.rhoP(inv);
    EXPECT_NEAR(inv.T / s.T, 1.0, 1e-6);
}

TEST(HelmLiteEos, SoundSpeedBelowLight) {
    HelmLiteEos eos;
    EosState s;
    s.rho = 1.0e9;
    s.T = 1.0e9;
    s.abar = 13.7;
    s.ye = 0.5;
    eos.rhoT(s);
    EXPECT_GT(s.cs, 1.0e8);
    EXPECT_LT(s.cs, constants::c_light);
    EXPECT_GT(s.gamma1, 1.2);
    EXPECT_LT(s.gamma1, 2.0);
}

TEST(Eos, RuntimeDispatch) {
    Eos g{GammaLawEos{1.4}};
    Eos h{HelmLiteEos{}};
    EosState s1, s2;
    s1.rho = s2.rho = 1.0e6;
    s1.T = s2.T = 1.0e8;
    s1.abar = s2.abar = 13.7;
    s1.ye = s2.ye = 0.5;
    g.rhoT(s1);
    h.rhoT(s2);
    EXPECT_NE(s1.p, s2.p); // degenerate pressure dominates in h
    EXPECT_GT(s2.p, 10.0 * s1.p);
}
