#include "microphysics/bdf.hpp"

#include <gtest/gtest.h>

#include <cmath>

using namespace exa;

namespace {

// y' = -k y, exact y(t) = y0 exp(-k t).
class Decay final : public OdeSystem {
public:
    explicit Decay(Real k) : m_k(k) {}
    int size() const override { return 1; }
    void rhs(Real, const std::vector<Real>& y, std::vector<Real>& f) override {
        f.resize(1);
        f[0] = -m_k * y[0];
    }
    void jacobian(Real, const std::vector<Real>&, DenseMatrix& j) override {
        j(0, 0) = -m_k;
    }

private:
    Real m_k;
};

// The classic stiff Robertson problem.
class Robertson final : public OdeSystem {
public:
    int size() const override { return 3; }
    void rhs(Real, const std::vector<Real>& y, std::vector<Real>& f) override {
        f.resize(3);
        f[0] = -0.04 * y[0] + 1.0e4 * y[1] * y[2];
        f[2] = 3.0e7 * y[1] * y[1];
        f[1] = -f[0] - f[2];
    }
    void jacobian(Real, const std::vector<Real>& y, DenseMatrix& j) override {
        j(0, 0) = -0.04;
        j(0, 1) = 1.0e4 * y[2];
        j(0, 2) = 1.0e4 * y[1];
        j(2, 0) = 0.0;
        j(2, 1) = 6.0e7 * y[1];
        j(2, 2) = 0.0;
        j(1, 0) = -j(0, 0) - j(2, 0);
        j(1, 1) = -j(0, 1) - j(2, 1);
        j(1, 2) = -j(0, 2) - j(2, 2);
    }
};

// Two widely separated decay constants: stiff once the fast mode dies.
class TwoScale final : public OdeSystem {
public:
    int size() const override { return 2; }
    void rhs(Real, const std::vector<Real>& y, std::vector<Real>& f) override {
        f.resize(2);
        f[0] = -1.0e6 * y[0];
        f[1] = -1.0 * y[1];
    }
    void jacobian(Real, const std::vector<Real>&, DenseMatrix& j) override {
        j.setZero();
        j(0, 0) = -1.0e6;
        j(1, 1) = -1.0;
    }
};

} // namespace

TEST(BdfIntegrator, ExponentialDecayAccuracy) {
    Decay sys(2.0);
    std::vector<Real> y = {1.0};
    OdeOptions opt;
    opt.rtol = 1e-8;
    opt.atol = 1e-12;
    BdfIntegrator bdf;
    auto stats = bdf.integrate(sys, y, 0.0, 3.0, opt);
    EXPECT_TRUE(stats.success);
    EXPECT_NEAR(y[0], std::exp(-6.0), 5e-6);
    EXPECT_GT(stats.steps, 10);
}

TEST(BdfIntegrator, ToleranceControlsError) {
    BdfIntegrator bdf;
    auto run = [&](Real rtol) {
        Decay sys(1.0);
        std::vector<Real> y = {1.0};
        OdeOptions opt;
        opt.rtol = rtol;
        opt.atol = 1e-14;
        bdf.integrate(sys, y, 0.0, 2.0, opt);
        return std::abs(y[0] - std::exp(-2.0));
    };
    EXPECT_LT(run(1e-9), run(1e-4));
}

TEST(BdfIntegrator, RobertsonStiffProblem) {
    Robertson sys;
    std::vector<Real> y = {1.0, 0.0, 0.0};
    OdeOptions opt;
    opt.rtol = 1e-7;
    opt.atol = 1e-12;
    BdfIntegrator bdf;
    auto stats = bdf.integrate(sys, y, 0.0, 100.0, opt);
    EXPECT_TRUE(stats.success);
    // Reference values at t = 100 (from tight-tolerance integrations).
    EXPECT_NEAR(y[0], 0.6172, 3e-3);
    EXPECT_NEAR(y[1] * 1e5, 0.6153, 2e-2);
    EXPECT_NEAR(y[2], 0.3828, 3e-3);
    // Conservation: components sum to one.
    EXPECT_NEAR(y[0] + y[1] + y[2], 1.0, 1e-9);
    // Implicit handles this with modest steps.
    EXPECT_LT(stats.steps, 5000);
}

TEST(BdfIntegrator, SparseMatchesDense) {
    auto run = [&](bool sparse) {
        Robertson sys;
        std::vector<Real> y = {1.0, 0.0, 0.0};
        OdeOptions opt;
        opt.rtol = 1e-8;
        opt.atol = 1e-13;
        opt.use_sparse = sparse;
        BdfIntegrator bdf;
        auto st = bdf.integrate(sys, y, 0.0, 10.0, opt);
        EXPECT_TRUE(st.success);
        return y;
    };
    auto yd = run(false);
    auto ys = run(true);
    for (int i = 0; i < 3; ++i) EXPECT_NEAR(ys[i], yd[i], 1e-7);
}

TEST(BdfIntegrator, StiffStepCountBeatsExplicitByOrders) {
    // The paper's core argument for implicit integration: explicit methods
    // march at the fastest timescale.
    TwoScale stiff_sys;
    std::vector<Real> y_bdf = {1.0, 1.0};
    OdeOptions opt;
    opt.rtol = 1e-6;
    opt.atol = 1e-12;
    BdfIntegrator bdf;
    auto st_bdf = bdf.integrate(stiff_sys, y_bdf, 0.0, 1.0, opt);
    ASSERT_TRUE(st_bdf.success);

    TwoScale sys2;
    std::vector<Real> y_rk = {1.0, 1.0};
    OdeOptions opt_rk = opt;
    opt_rk.max_steps = 5'000'000;
    RkIntegrator rk;
    auto st_rk = rk.integrate(sys2, y_rk, 0.0, 1.0, opt_rk);
    ASSERT_TRUE(st_rk.success);

    EXPECT_NEAR(y_bdf[1], std::exp(-1.0), 1e-4);
    EXPECT_NEAR(y_rk[1], std::exp(-1.0), 1e-4);
    // Explicit needs h ~ 1/k = 1e-6 for stability -> ~1e5-1e6 steps;
    // implicit takes a few hundred at most.
    EXPECT_GT(st_rk.steps, 50 * st_bdf.steps);
}

TEST(BdfIntegrator, JacobianReuseSavesFactorizations) {
    Robertson sys;
    std::vector<Real> y = {1.0, 0.0, 0.0};
    OdeOptions opt;
    opt.rtol = 1e-6;
    opt.atol = 1e-12;
    BdfIntegrator bdf;
    auto st = bdf.integrate(sys, y, 0.0, 100.0, opt);
    ASSERT_TRUE(st.success);
    EXPECT_LT(st.lu_factors, st.steps); // reuse across steps
    EXPECT_LT(st.jac_evals, st.newton_iters);
}

TEST(BdfIntegrator, ZeroIntervalIsNoop) {
    Decay sys(1.0);
    std::vector<Real> y = {5.0};
    BdfIntegrator bdf;
    auto st = bdf.integrate(sys, y, 1.0, 1.0, OdeOptions{});
    EXPECT_TRUE(st.success);
    EXPECT_DOUBLE_EQ(y[0], 5.0);
    EXPECT_EQ(st.steps, 0);
}

TEST(RkIntegrator, NonStiffAccuracy) {
    Decay sys(3.0);
    std::vector<Real> y = {2.0};
    OdeOptions opt;
    opt.rtol = 1e-9;
    opt.atol = 1e-13;
    RkIntegrator rk;
    auto st = rk.integrate(sys, y, 0.0, 1.0, opt);
    EXPECT_TRUE(st.success);
    EXPECT_NEAR(y[0], 2.0 * std::exp(-3.0), 1e-8);
}

TEST(OdeSystem, NumericalJacobianDefaultMatchesAnalytic) {
    // A system that does NOT override jacobian() gets finite differences.
    class NoJac final : public OdeSystem {
    public:
        int size() const override { return 2; }
        void rhs(Real, const std::vector<Real>& y, std::vector<Real>& f) override {
            f.resize(2);
            f[0] = -2.0 * y[0] + y[1] * y[1];
            f[1] = y[0] - 3.0 * y[1];
        }
    };
    NoJac sys;
    std::vector<Real> y = {1.0, 2.0};
    DenseMatrix j(2);
    sys.jacobian(0.0, y, j);
    EXPECT_NEAR(j(0, 0), -2.0, 1e-5);
    EXPECT_NEAR(j(0, 1), 4.0, 1e-5);
    EXPECT_NEAR(j(1, 0), 1.0, 1e-5);
    EXPECT_NEAR(j(1, 1), -3.0, 1e-5);
}

TEST(WrmsNorm, WeightsByToleranceScale) {
    std::vector<Real> v = {1.0e-6, 1.0e-6};
    std::vector<Real> y = {1.0, 1.0e-6};
    // First component: weight 1/(1e-4*1+1e-8); second: 1/(1e-4*1e-6+1e-8).
    const Real norm = wrmsNorm(v, y, 1e-4, 1e-8);
    EXPECT_GT(norm, 1.0); // second component dominates (error >> tol)
}
