#include "microphysics/burner.hpp"
#include "microphysics/network.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

using namespace exa;

namespace {

// Nucleon (mass-fraction) conservation check: sum_i A_i dY_i/dt == 0.
Real massFractionDrift(const ReactionNetwork& net, Real rho, Real T,
                       const std::vector<Real>& X) {
    std::vector<Real> Y(net.nspec()), dY(net.nspec());
    net.xToY(X.data(), Y.data());
    Real edot;
    net.ydot(rho, T, Y.data(), dY.data(), edot);
    Real drift = 0.0;
    for (int i = 0; i < net.nspec(); ++i) drift += net.species(i).A * dY[i];
    return drift;
}

} // namespace

TEST(Network, IgnitionSimpleStructure) {
    auto net = makeIgnitionSimple();
    EXPECT_EQ(net.nspec(), 2);
    EXPECT_EQ(net.numReactions(), 1);
    EXPECT_EQ(net.speciesIndex("c12"), 0);
    EXPECT_EQ(net.speciesIndex("mg24"), 1);
    EXPECT_EQ(net.speciesIndex("fe56"), -1);
}

TEST(Network, Aprox13Structure) {
    auto net = makeAprox13();
    EXPECT_EQ(net.nspec(), 13);
    EXPECT_EQ(net.speciesIndex("ni56"), 12);
    EXPECT_EQ(net.numReactions(), 1 + 11 + 3); // 3a + 11 (a,g) + heavy ion
}

TEST(Network, CompositionMeans) {
    auto net = makeIgnitionSimple();
    std::vector<Real> X = {1.0, 0.0};
    EXPECT_NEAR(net.abar(X.data()), 12.0, 1e-12);
    EXPECT_NEAR(net.zbar(X.data()), 6.0, 1e-12);
    EXPECT_NEAR(net.ye(X.data()), 0.5, 1e-12);
    std::vector<Real> Xmix = {0.5, 0.5};
    // abar = 1/(0.5/12 + 0.5/24) = 16
    EXPECT_NEAR(net.abar(Xmix.data()), 16.0, 1e-12);
}

class NetworkConservation
    : public ::testing::TestWithParam<std::tuple<const char*, Real, Real>> {};

TEST_P(NetworkConservation, NucleonNumberConserved) {
    auto [which, rho, T] = GetParam();
    ReactionNetwork net = std::string(which) == "ignition" ? makeIgnitionSimple()
                          : std::string(which) == "3alpha" ? makeTripleAlpha()
                                                           : makeAprox13();
    std::vector<Real> X(net.nspec(), 0.0);
    // Seed every species a little so all reactions are active.
    for (int i = 0; i < net.nspec(); ++i) X[i] = 1.0;
    Real s = std::accumulate(X.begin(), X.end(), 0.0);
    for (auto& x : X) x /= s;
    const Real drift = massFractionDrift(net, rho, T, X);
    std::vector<Real> Y(net.nspec()), dY(net.nspec());
    net.xToY(X.data(), Y.data());
    Real edot;
    net.ydot(rho, T, Y.data(), dY.data(), edot);
    Real scale = 0.0;
    for (int i = 0; i < net.nspec(); ++i) {
        scale = std::max(scale, std::abs(net.species(i).A * dY[i]));
    }
    EXPECT_LE(std::abs(drift), 1e-12 * std::max(scale, 1e-300));
}

INSTANTIATE_TEST_SUITE_P(
    States, NetworkConservation,
    ::testing::Values(std::tuple{"ignition", 2.0e9, 8.0e8},
                      std::tuple{"ignition", 1.0e7, 2.0e9},
                      std::tuple{"3alpha", 1.0e6, 2.0e8},
                      std::tuple{"aprox13", 1.0e7, 3.0e9},
                      std::tuple{"aprox13", 5.0e8, 5.0e9}));

TEST(Network, EnergyGenerationPositiveForFuel) {
    auto net = makeIgnitionSimple();
    std::vector<Real> X = {1.0, 0.0};
    Eos eos{HelmLiteEos{}};
    EXPECT_GT(edotOf(net, eos, 2.0e9, 8.0e8, X.data()), 0.0);
    // No fuel -> no energy.
    std::vector<Real> ash = {0.0, 1.0};
    EXPECT_DOUBLE_EQ(edotOf(net, eos, 2.0e9, 8.0e8, ash.data()), 0.0);
}

TEST(Network, TripleAlphaTemperatureSensitivityNearT40) {
    // Section IV-B: "the energy generation rate ... may have a temperature
    // dependence as sensitive as T^40" for helium burning near 1e8 K.
    auto net = makeTripleAlpha();
    net.screening_enabled = false;
    std::vector<Real> X = {1.0, 0.0, 0.0};
    std::vector<Real> Y(3);
    net.xToY(X.data(), Y.data());
    const Real nu = net.temperatureSensitivity(1.0e5, 1.0e8, Y.data());
    EXPECT_GT(nu, 30.0);
    EXPECT_LT(nu, 55.0);
}

TEST(Network, RatesIncreaseSteeplyWithT) {
    auto net = makeIgnitionSimple();
    std::vector<Real> Y = {1.0 / 12.0, 0.0};
    std::vector<Real> R1(1), R2(1);
    net.rates(2.0e9, 6.0e8, Y.data(), R1.data(), nullptr);
    net.rates(2.0e9, 1.2e9, Y.data(), R2.data(), nullptr);
    EXPECT_GT(R2[0], 1.0e4 * R1[0]); // doubling T9 from 0.6: explosive rise
}

TEST(Network, ScreeningEnhancesRates) {
    auto net = makeIgnitionSimple();
    std::vector<Real> Y = {1.0 / 12.0, 0.0};
    std::vector<Real> on(1), off(1);
    net.rates(2.0e9, 8.0e8, Y.data(), on.data(), nullptr);
    net.screening_enabled = false;
    net.rates(2.0e9, 8.0e8, Y.data(), off.data(), nullptr);
    EXPECT_GT(on[0], off[0]);
    EXPECT_LT(on[0], 10.0 * off[0]); // capped weak screening
}

TEST(Network, AnalyticJacobianMatchesFiniteDifferences) {
    // Screening off: its (small) composition derivative is deliberately
    // omitted from the analytic Jacobian, as in the production aprox13;
    // ScreeningJacobianConsistency below bounds that approximation.
    auto net = makeAprox13();
    net.screening_enabled = false;
    const int n = net.nspec();
    std::vector<Real> X(n, 0.01);
    X[0] = 0.3;
    X[1] = 0.35;
    X[2] = 0.24;
    std::vector<Real> Y(n);
    net.xToY(X.data(), Y.data());
    const Real rho = 1.0e7, T = 3.0e9, cv = 1.0e7;

    DenseMatrix J(n + 1);
    net.jacobian(rho, T, Y.data(), cv, J);

    // Row scales, so tiny entries are not held to a relative standard
    // their finite-difference estimate cannot meet.
    std::vector<Real> row_scale(n + 1, 0.0);
    for (int i = 0; i <= n; ++i) {
        for (int j = 0; j <= n; ++j) {
            row_scale[i] = std::max(row_scale[i], std::abs(J(i, j)));
        }
    }

    // Central-difference columns.
    std::vector<Real> fm(n), fp(n);
    Real em, ep;
    for (int j = 0; j <= n; ++j) {
        std::vector<Real> Ym = Y, Yp = Y;
        Real Tm = T, Tp = T;
        Real dy;
        if (j < n) {
            dy = std::max(std::abs(Y[j]) * 1e-5, 1e-10);
            Ym[j] -= dy;
            Yp[j] += dy;
        } else {
            dy = T * 1e-6;
            Tm -= dy;
            Tp += dy;
        }
        net.ydot(rho, Tm, Ym.data(), fm.data(), em);
        net.ydot(rho, Tp, Yp.data(), fp.data(), ep);
        for (int i = 0; i < n; ++i) {
            const Real fd = (fp[i] - fm[i]) / (2 * dy);
            const Real scale =
                std::abs(fd) + std::abs(J(i, j)) + 1e-5 * row_scale[i] + 1e-20;
            ASSERT_NEAR((J(i, j) - fd) / scale, 0.0, 1e-2)
                << "entry " << i << "," << j;
        }
        const Real fd_T = ((ep - em) / (2 * dy)) / cv;
        const Real scale =
            std::abs(fd_T) + std::abs(J(n, j)) + 1e-5 * row_scale[n] + 1e-20;
        ASSERT_NEAR((J(n, j) - fd_T) / scale, 0.0, 1e-2) << "T row, col " << j;
    }
}

TEST(Network, SparsityCoversJacobian) {
    // Every numerically nonzero Jacobian entry must be structural.
    auto net = makeAprox13();
    const int n = net.nspec();
    std::vector<Real> X(n, 1.0 / n);
    std::vector<Real> Y(n);
    net.xToY(X.data(), Y.data());
    DenseMatrix J(n + 1);
    net.jacobian(1.0e7, 4.0e9, Y.data(), 1.0e7, J);
    auto pat = net.sparsity();
    for (int i = 0; i <= n; ++i) {
        for (int j = 0; j <= n; ++j) {
            if (std::abs(J(i, j)) > 0.0) {
                ASSERT_TRUE(pat[i * (n + 1) + j]) << i << "," << j;
            }
        }
    }
}

TEST(Network, ScreeningJacobianConsistency) {
    // The analytic Jacobian neglects d(screening)/dY; verify the error is
    // small relative to the dominant terms (finite-difference check with
    // screening on).
    auto net = makeIgnitionSimple();
    std::vector<Real> Y = {1.0 / 12.0, 0.0};
    DenseMatrix J(3);
    const Real rho = 2.0e9, T = 8.0e8, cv = 1.0e7;
    net.jacobian(rho, T, Y.data(), cv, J);
    std::vector<Real> f0(2), f1(2);
    Real e0, e1;
    net.ydot(rho, T, Y.data(), f0.data(), e0);
    std::vector<Real> Yp = Y;
    const Real dy = Y[0] * 1e-6;
    Yp[0] += dy;
    net.ydot(rho, T, Yp.data(), f1.data(), e1);
    const Real fd = (f1[0] - f0[0]) / dy;
    EXPECT_NEAR(J(0, 0) / fd, 1.0, 0.05);
}

TEST(Network, ReverseVariantStructure) {
    auto net = makeAprox13WithReverse();
    EXPECT_EQ(net.nspec(), 13);
    // Forward set (15) + one photodisintegration per (a,g) link (11).
    EXPECT_EQ(net.numReactions(), 15 + 11);
    // Reverse Q values are the negated forward ones (from mass excesses).
    const auto& fwd = net.reaction(1);  // c12(a,g)o16
    bool found = false;
    for (int r = 0; r < net.numReactions(); ++r) {
        if (net.reaction(r).label == fwd.label + "_rev") {
            EXPECT_NEAR(net.reaction(r).Q_MeV, -fwd.Q_MeV, 1e-12);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Network, PhotodisintegrationSwitchesOnAtHighT) {
    // Below T9 ~ 2 the reverse flow is negligible; by T9 ~ 6 it competes
    // with the forward capture (the quasi-equilibrium regime).
    auto net = makeAprox13WithReverse();
    net.screening_enabled = false;
    std::vector<Real> X(13, 0.0);
    X[0] = 0.1;  // he4
    X[1] = 0.45; // c12
    X[2] = 0.45; // o16
    std::vector<Real> Y(13);
    net.xToY(X.data(), Y.data());
    std::vector<Real> R(net.numReactions());
    auto ratio = [&](Real T) {
        net.rates(1.0e7, T, Y.data(), R.data(), nullptr);
        // c12(a,g)o16 is reaction 1; find its reverse.
        Real fwd = R[1], rev = 0.0;
        for (int r = 0; r < net.numReactions(); ++r) {
            if (net.reaction(r).label == "c12(a,g)o16_rev") rev = R[r];
        }
        return rev / std::max(fwd, Real(1e-300));
    };
    EXPECT_LT(ratio(2.0e9), 1e-3);
    EXPECT_GT(ratio(6.0e9), 1e-3 * 100);
    EXPECT_GT(ratio(6.0e9), ratio(2.0e9));
}

TEST(Network, ReverseVariantStillConservesNucleons) {
    auto net = makeAprox13WithReverse();
    std::vector<Real> X(13, 1.0 / 13.0);
    std::vector<Real> Y(13), dY(13);
    net.xToY(X.data(), Y.data());
    Real edot;
    net.ydot(1.0e7, 5.0e9, Y.data(), dY.data(), edot);
    Real drift = 0.0, scale = 0.0;
    for (int i = 0; i < 13; ++i) {
        drift += net.species(i).A * dY[i];
        scale = std::max(scale, std::abs(net.species(i).A * dY[i]));
    }
    EXPECT_LE(std::abs(drift), 1e-12 * scale);
}

TEST(Network, ReverseVariantBurnsStably) {
    // The stiff QSE-adjacent regime must still integrate.
    auto net = makeAprox13WithReverse();
    Eos eos{HelmLiteEos{}};
    std::vector<Real> X(13, 0.0);
    X[0] = 0.1;
    X[1] = 0.45;
    X[2] = 0.45;
    auto r = burnZone(net, eos, 1.0e7, 5.0e9, X.data(), 1.0e-9);
    ASSERT_TRUE(r.success);
    Real xsum = 0.0;
    for (Real x : r.X) xsum += x;
    EXPECT_NEAR(xsum, 1.0, 1e-10);
}
