// The batched burn engine's core guarantees: BatchedDenseLU slots are
// bit-identical to DenseLU, workspace-reusing burns are bit-identical to
// the allocating path, BatchBurner output matches per-zone burnZone
// exactly (sorted or not, hybrid tail or not), the stiffness sort routes
// the tail as reported, and the network registry resolves every built-in
// by name (with a helpful error for unknown names).
#include "microphysics/batch_burner.hpp"

#include "core/executor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

using namespace exa;

namespace {

std::vector<Real> fuelX(const ReactionNetwork& net) {
    std::vector<Real> X(net.nspec(), 0.0);
    const int ihe4 = net.speciesIndex("he4");
    const int ic12 = net.speciesIndex("c12");
    const int io16 = net.speciesIndex("o16");
    X[ihe4 >= 0 ? ihe4 : 0] = 0.1;
    X[ic12 >= 0 ? ic12 : 0] = 0.45;
    X[io16 >= 0 ? io16 : 0] = 0.45;
    return X;
}

// A batch of zones with a wide stiffness spread: cool quiescent bulk up
// to igniting hot spots.
BurnBatch makeBatch(const ReactionNetwork& net, std::int64_t nzones) {
    BurnBatch b;
    b.resize(net.nspec(), nzones);
    auto X = fuelX(net);
    for (std::int64_t z = 0; z < nzones; ++z) {
        b.rho[z] = 1.0e7;
        // 1e8 .. ~2.5e9, deliberately not monotone in z so the sort has
        // real work to do.
        const double f = static_cast<double>((z * 7) % nzones) / nzones;
        b.T[z] = 1.0e8 + 2.4e9 * f * f;
        for (int s = 0; s < net.nspec(); ++s) b.Xin(s)[z] = X[s];
    }
    return b;
}

// Per-zone reference through the plain allocating burnZone path.
void expectMatchesBurnZone(const ReactionNetwork& net, const Eos& eos,
                           const BurnBatch& b, Real dt,
                           const OdeOptions& opt = OdeOptions{}) {
    std::vector<Real> X(net.nspec());
    for (std::int64_t z = 0; z < b.nzones; ++z) {
        for (int s = 0; s < net.nspec(); ++s) X[s] = b.Xin(s)[z];
        auto r = burnZone(net, eos, b.rho[z], b.T[z], X.data(), dt, opt);
        ASSERT_EQ(b.success[z] != 0, r.success) << "zone " << z;
        EXPECT_EQ(b.T_out[z], r.T) << "zone " << z;
        EXPECT_EQ(b.e_nuc[z], r.e_nuc) << "zone " << z;
        EXPECT_EQ(b.steps[z], r.stats.steps) << "zone " << z;
        for (int s = 0; s < net.nspec(); ++s) {
            EXPECT_EQ(b.Xout(s)[z], r.X[s]) << "zone " << z << " spec " << s;
        }
    }
}

} // namespace

// --- BatchedDenseLU ------------------------------------------------------

TEST(BatchedDenseLU, SlotsMatchDenseLUBitwise) {
    auto net = makeAprox13();
    const int n = net.nspec() + 1;
    auto X = fuelX(net);
    std::vector<Real> Y(net.nspec());
    net.xToY(X.data(), Y.data());

    BatchedDenseLU blu;
    blu.resize(n, 4);
    EXPECT_EQ(blu.size(), n);
    EXPECT_EQ(blu.batchCount(), 4);

    // Four different Newton matrices I - h*J, factored into four slots and
    // against four independent DenseLU references; solve bit-compare.
    for (int slot = 0; slot < 4; ++slot) {
        DenseMatrix J(n);
        net.jacobian(1.0e7, 2.0e9 + 3.0e8 * slot, Y.data(), 1.0e7, J);
        J.scaleAndAddIdentity(1.0, -1.0e-8 * (slot + 1));
        DenseLU ref;
        ASSERT_TRUE(ref.factor(J));
        ASSERT_TRUE(blu.factor(slot, J));
        std::vector<Real> b(n), bb(n);
        for (int i = 0; i < n; ++i) b[i] = bb[i] = 1.0 + 0.1 * i;
        ref.solve(b);
        blu.solve(slot, bb);
        for (int i = 0; i < n; ++i) EXPECT_EQ(bb[i], b[i]) << "slot " << slot;
    }
}

// --- Workspace reuse -----------------------------------------------------

TEST(BurnWorkspaceReuse, BurnZoneIntoMatchesBurnZone) {
    auto net = makeIso7();
    Eos eos{HelmLiteEos{}};
    auto X = fuelX(net);
    const Real dt = 1.0e-7;

    BurnOde ode(net, eos, 0.0);
    BurnWorkspace ws;
    BurnResult r;
    // Several different zones through ONE workspace — the reuse must not
    // leak state between burns.
    for (Real T : {1.5e8, 6.0e8, 1.2e9, 2.5e9, 1.5e8}) {
        auto ref = burnZone(net, eos, 1.0e7, T, X.data(), dt);
        burnZoneInto(ode, 1.0e7, T, X.data(), dt, OdeOptions{}, ws, r);
        ASSERT_EQ(r.success, ref.success) << "T=" << T;
        EXPECT_EQ(r.T, ref.T) << "T=" << T;
        EXPECT_EQ(r.e_nuc, ref.e_nuc) << "T=" << T;
        EXPECT_EQ(r.stats.steps, ref.stats.steps) << "T=" << T;
        for (int s = 0; s < net.nspec(); ++s) EXPECT_EQ(r.X[s], ref.X[s]);
    }
}

TEST(BurnWorkspaceReuse, BatchedLUAttachmentIsBitIdentical) {
    // The same burn with the Newton solves routed through a BatchedDenseLU
    // slot instead of the workspace's own DenseLU.
    auto net = makeIso7();
    Eos eos{HelmLiteEos{}};
    auto X = fuelX(net);
    const Real dt = 1.0e-7;

    BurnOde ode(net, eos, 0.0);
    BurnWorkspace ws;
    BurnResult r;
    BatchedDenseLU blu;
    blu.resize(net.nspec() + 1, 3);
    int slot = 0;
    for (Real T : {6.0e8, 1.2e9, 2.5e9}) {
        auto ref = burnZone(net, eos, 1.0e7, T, X.data(), dt);
        ws.bdf.batched_lu = &blu;
        ws.bdf.batched_slot = slot++;
        burnZoneInto(ode, 1.0e7, T, X.data(), dt, OdeOptions{}, ws, r);
        ASSERT_EQ(r.success, ref.success);
        EXPECT_EQ(r.T, ref.T);
        EXPECT_EQ(r.stats.steps, ref.stats.steps);
        for (int s = 0; s < net.nspec(); ++s) EXPECT_EQ(r.X[s], ref.X[s]);
    }
    ws.bdf.batched_lu = nullptr;
}

// --- BatchBurner ---------------------------------------------------------

TEST(BatchBurner, SortedBatchesMatchPerZoneBurnBitwise) {
    auto net = makeIso7();
    Eos eos{HelmLiteEos{}};
    const Real dt = 1.0e-7;
    auto b = makeBatch(net, 48);

    BatchBurnOptions opt;
    opt.batch_size = 16;
    BatchBurner burner(net, eos, opt);
    burner.run(b, dt);

    const auto& rep = burner.report();
    EXPECT_EQ(rep.gathered, 48);
    EXPECT_EQ(rep.device_zones, 48);
    EXPECT_EQ(rep.tail_zones, 0);
    EXPECT_EQ(rep.batches, 3); // balanced: 48 zones / target 16
    EXPECT_GT(rep.device_steps, 48);
    EXPECT_LE(rep.stiffness_median, rep.stiffness_max);

    expectMatchesBurnZone(net, eos, b, dt);
}

TEST(BatchBurner, SortOnOffAndHybridAllAgree) {
    // Processing order must only change *when* a zone burns, never its
    // result: unsorted, sorted, and sorted-with-tail runs are bitwise
    // equal zone for zone.
    auto net = makeIso7();
    Eos eos{HelmLiteEos{}};
    const Real dt = 1.0e-7;
    auto b0 = makeBatch(net, 40);
    auto b1 = b0;
    auto b2 = b0;

    BatchBurnOptions unsorted;
    unsorted.sort_by_stiffness = false;
    BatchBurnOptions sorted;
    BatchBurnOptions hybrid;
    hybrid.hybrid_cpu_tail = true;
    hybrid.tail_factor = 1.0;
    hybrid.tail_min_stiffness = 0.0; // everything past the median tails

    BatchBurner(net, eos, unsorted).run(b0, dt);
    BatchBurner(net, eos, sorted).run(b1, dt);
    BatchBurner bh(net, eos, hybrid);
    bh.run(b2, dt);

    for (std::int64_t z = 0; z < b0.nzones; ++z) {
        EXPECT_EQ(b0.T_out[z], b1.T_out[z]) << "zone " << z;
        EXPECT_EQ(b0.T_out[z], b2.T_out[z]) << "zone " << z;
        EXPECT_EQ(b0.steps[z], b1.steps[z]) << "zone " << z;
        EXPECT_EQ(b0.steps[z], b2.steps[z]) << "zone " << z;
        for (int s = 0; s < net.nspec(); ++s) {
            EXPECT_EQ(b0.Xout(s)[z], b1.Xout(s)[z]);
            EXPECT_EQ(b0.Xout(s)[z], b2.Xout(s)[z]);
        }
    }
    // And the tail really was routed.
    const auto& rep = bh.report();
    EXPECT_GT(rep.tail_zones, 0);
    EXPECT_EQ(rep.device_zones + rep.tail_zones, rep.gathered);
    EXPECT_GT(rep.tail_steps, 0);
    EXPECT_GT(rep.stiffness_tail_cut, 0.0);
}

TEST(BatchBurner, TailRoutesOnlyTheExtremeZones) {
    // Default tail policy on a quiescent batch with two igniting zones:
    // exactly the igniting zones cross the absolute stiffness floor.
    auto net = makeAprox13();
    Eos eos{HelmLiteEos{}};
    const Real dt = 1.0e-6;
    BurnBatch b;
    b.resize(net.nspec(), 32);
    auto X = fuelX(net);
    for (std::int64_t z = 0; z < b.nzones; ++z) {
        b.rho[z] = 1.0e7;
        b.T[z] = (z == 5 || z == 21) ? 3.2e9 : 1.5e8;
        for (int s = 0; s < net.nspec(); ++s) b.Xin(s)[z] = X[s];
    }
    BatchBurnOptions opt;
    opt.hybrid_cpu_tail = true;
    BatchBurner burner(net, eos, opt);
    burner.run(b, dt);
    const auto& rep = burner.report();
    EXPECT_EQ(rep.gathered, 32);
    EXPECT_EQ(rep.tail_zones, 2);
    EXPECT_EQ(rep.device_zones, 30);
    EXPECT_GT(rep.stiffness_max, rep.stiffness_tail_cut);
    // The igniting zones dominate the step totals despite being 2 of 32.
    EXPECT_GT(rep.tail_steps, rep.device_steps);
    expectMatchesBurnZone(net, eos, b, dt);
}

TEST(BatchBurner, EmptyBatchIsANoop) {
    auto net = makeIso7();
    Eos eos{HelmLiteEos{}};
    BurnBatch b;
    b.resize(net.nspec(), 0);
    BatchBurner burner(net, eos);
    burner.run(b, 1.0e-6);
    EXPECT_EQ(burner.report().gathered, 0);
    EXPECT_EQ(burner.report().batches, 0);
}

TEST(BatchBurner, SparseSolverPathMatchesPerZone) {
    // use_sparse bypasses the BatchedDenseLU slab; the batch must still
    // match the per-zone sparse path exactly.
    auto net = makeIso7();
    Eos eos{HelmLiteEos{}};
    const Real dt = 1.0e-7;
    auto b = makeBatch(net, 24);
    OdeOptions ode;
    ode.use_sparse = true;
    BatchBurner burner(net, eos);
    burner.run(b, dt, ode);
    expectMatchesBurnZone(net, eos, b, dt, ode);
}

// --- Network registry ----------------------------------------------------

TEST(NetworkRegistry, BuiltInsResolveByName) {
    auto& reg = NetworkRegistry::instance();
    for (const char* name : {"ignition_simple", "triple_alpha", "iso7", "aprox13",
                             "aprox13+rev", "aprox19"}) {
        EXPECT_TRUE(reg.contains(name)) << name;
    }
    auto names = reg.names();
    EXPECT_GE(names.size(), 6u);
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));

    EXPECT_EQ(reg.make("iso7").nspec(), 7);
    EXPECT_EQ(reg.make("aprox19").nspec(), 19);
    EXPECT_EQ(makeNetworkByName("aprox13").nspec(), 13);
    EXPECT_EQ(makeNetworkByName("iso7").name(), "iso7");
}

TEST(NetworkRegistry, UnknownNameThrowsListingRegistered) {
    try {
        makeNetworkByName("nse_table");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("nse_table"), std::string::npos) << msg;
        EXPECT_NE(msg.find("aprox13"), std::string::npos) << msg;
        EXPECT_NE(msg.find("iso7"), std::string::npos) << msg;
    }
}

// --- iso7 / aprox19 physics sanity --------------------------------------

TEST(RegistryNetworks, NucleonConservationInYdot) {
    // The stoichiometry-override links (iso7's si28 + 7 he4 -> ni56, the
    // aprox19 lumped channels) must still conserve nucleons exactly:
    // sum_i A_i dY_i/dt == 0 up to round-off.
    for (const char* name : {"iso7", "aprox19"}) {
        auto net = makeNetworkByName(name);
        auto X = fuelX(net);
        std::vector<Real> Y(net.nspec()), dY(net.nspec());
        net.xToY(X.data(), Y.data());
        Real edot = 0.0;
        net.ydot(1.0e7, 3.0e9, Y.data(), dY.data(), edot);
        Real sum = 0.0, scale = 0.0;
        for (int i = 0; i < net.nspec(); ++i) {
            sum += net.species(i).A * dY[i];
            scale += std::abs(net.species(i).A * dY[i]);
        }
        ASSERT_GT(scale, 0.0) << name << ": nothing reacted";
        EXPECT_LT(std::abs(sum) / scale, 1.0e-12) << name;
        EXPECT_GT(edot, 0.0) << name;
    }
}

TEST(RegistryNetworks, Iso7AndAprox19BurnSmoke) {
    Eos eos{HelmLiteEos{}};
    for (const char* name : {"iso7", "aprox19"}) {
        auto net = makeNetworkByName(name);
        auto X = fuelX(net);
        auto r = burnZone(net, eos, 1.0e7, 3.0e9, X.data(), 1.0e-9);
        ASSERT_TRUE(r.success) << name;
        EXPECT_GT(r.stats.steps, 0) << name;
        const Real sumX = std::accumulate(r.X.begin(), r.X.end(), Real(0));
        EXPECT_NEAR(sumX, 1.0, 1.0e-9) << name;
    }
}
