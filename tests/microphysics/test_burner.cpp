#include "microphysics/burner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

using namespace exa;

TEST(Burner, CarbonBurnRaisesTemperatureAndDepletesFuel) {
    auto net = makeIgnitionSimple();
    Eos eos{HelmLiteEos{}};
    std::vector<Real> X = {1.0, 0.0};
    // Hot dense carbon: should burn appreciably in a short time.
    const Real rho = 2.0e9, T0 = 8.0e8, dt = 1.0e-3;
    auto r = burnZone(net, eos, rho, T0, X.data(), dt);
    ASSERT_TRUE(r.success);
    EXPECT_GT(r.T, T0);
    EXPECT_LT(r.X[0], 1.0);
    EXPECT_GT(r.X[1], 0.0);
    EXPECT_NEAR(r.X[0] + r.X[1], 1.0, 1e-10);
    EXPECT_GT(r.e_nuc, 0.0);
}

TEST(Burner, ColdZoneIsInert) {
    auto net = makeIgnitionSimple();
    Eos eos{HelmLiteEos{}};
    std::vector<Real> X = {1.0, 0.0};
    auto r = burnZone(net, eos, 1.0e4, 1.0e6, X.data(), 1.0);
    ASSERT_TRUE(r.success);
    EXPECT_NEAR(r.T, 1.0e6, 1.0);
    EXPECT_NEAR(r.X[0], 1.0, 1e-12);
    EXPECT_LT(r.stats.steps, 50); // nothing to resolve
}

TEST(Burner, ThermonuclearRunawayFeedback) {
    // Positive feedback: the same zone burns much further when the burn
    // is long enough for self-heating to engage (superlinear T growth).
    auto net = makeIgnitionSimple();
    Eos eos{HelmLiteEos{}};
    std::vector<Real> X = {1.0, 0.0};
    const Real rho = 5.0e9, T0 = 9.0e8;
    auto r_short = burnZone(net, eos, rho, T0, X.data(), 1.0e-5);
    auto r_long = burnZone(net, eos, rho, T0, X.data(), 1.0e-3);
    ASSERT_TRUE(r_short.success);
    ASSERT_TRUE(r_long.success);
    const Real dT_short = r_short.T - T0;
    const Real dT_long = r_long.T - T0;
    // 100x the time, appreciably more than 100x the heating.
    EXPECT_GT(dT_long, 101.0 * std::max(dT_short, Real(1.0)));
}

TEST(Burner, EnergyReleaseMatchesQValue) {
    // Complete incineration of carbon releases Q/(2*m(C12)) per gram:
    // 13.933 MeV per 2 C12 = ~5.6e17 erg/g.
    auto net = makeIgnitionSimple();
    Eos eos{HelmLiteEos{}};
    std::vector<Real> X = {1.0, 0.0};
    const Real rho = 5.0e9;
    Real T = 1.0e9;
    Real e_total = 0.0;
    for (int rep = 0; rep < 40 && X[0] > 1e-3; ++rep) {
        auto r = burnZone(net, eos, rho, T, X.data(), 1.0e-3);
        ASSERT_TRUE(r.success);
        T = r.T;
        X = r.X;
        e_total += r.e_nuc;
    }
    ASSERT_LT(X[0], 1e-3) << "carbon did not fully burn";
    const Real q_per_gram = 13.933 * constants::MeV_to_erg * constants::N_A / 24.0;
    EXPECT_NEAR(e_total / q_per_gram, 1.0, 0.05);
}

TEST(Burner, Aprox13AlphaChainFlowsUphill) {
    // Silicon-burning-like conditions: helium capture should populate
    // heavier alpha nuclei.
    auto net = makeAprox13();
    Eos eos{HelmLiteEos{}};
    std::vector<Real> X(13, 0.0);
    X[0] = 0.1; // he4
    X[1] = 0.45;
    X[2] = 0.45;
    auto r = burnZone(net, eos, 1.0e7, 4.0e9, X.data(), 1.0e-6);
    ASSERT_TRUE(r.success);
    Real heavy = 0.0;
    for (int i = 3; i < 13; ++i) heavy += r.X[i];
    EXPECT_GT(heavy, 1e-6);
    EXPECT_NEAR(std::accumulate(r.X.begin(), r.X.end(), 0.0), 1.0, 1e-9);
}

TEST(Burner, SparseAndDenseSolvesAgree) {
    auto net = makeAprox13();
    Eos eos{HelmLiteEos{}};
    std::vector<Real> X(13, 0.0);
    X[0] = 0.2;
    X[1] = 0.4;
    X[2] = 0.4;
    OdeOptions dense_opt, sparse_opt;
    sparse_opt.use_sparse = true;
    auto rd = burnZone(net, eos, 1.0e7, 3.5e9, X.data(), 1.0e-6, dense_opt);
    auto rs = burnZone(net, eos, 1.0e7, 3.5e9, X.data(), 1.0e-6, sparse_opt);
    ASSERT_TRUE(rd.success);
    ASSERT_TRUE(rs.success);
    EXPECT_NEAR(rs.T / rd.T, 1.0, 1e-5);
    for (int i = 0; i < 13; ++i) EXPECT_NEAR(rs.X[i], rd.X[i], 1e-5);
}

TEST(Burner, BurningTimescaleShrinksWithTemperature) {
    auto net = makeIgnitionSimple();
    Eos eos{HelmLiteEos{}};
    std::vector<Real> X = {0.5, 0.5};
    const Real t1 = burningTimescale(net, eos, 2.0e7, 1.5e9, X.data());
    const Real t2 = burningTimescale(net, eos, 2.0e7, 3.0e9, X.data());
    EXPECT_LT(t2, t1 / 100.0);
    // Inert state: effectively infinite timescale.
    std::vector<Real> ash = {0.0, 1.0};
    EXPECT_GT(burningTimescale(net, eos, 2.0e7, 1.5e9, ash.data()), 1.0e50);
}

TEST(Burner, WorkVariesByOrdersOfMagnitudeAcrossZones) {
    // Section VI: "the computational cost may vary by multiple orders of
    // magnitude across zones" — an igniting zone vs a quiescent one.
    auto net = makeIgnitionSimple();
    Eos eos{HelmLiteEos{}};
    std::vector<Real> X = {1.0, 0.0};
    auto hot = burnZone(net, eos, 5.0e9, 1.2e9, X.data(), 1.0e-4);
    auto cold = burnZone(net, eos, 1.0e6, 1.0e7, X.data(), 1.0e-4);
    ASSERT_TRUE(hot.success);
    ASSERT_TRUE(cold.success);
    EXPECT_GT(hot.stats.steps, 30 * std::max<std::int64_t>(cold.stats.steps, 1));
}

TEST(Burner, KernelInfoRegisterPressure) {
    // ignition_simple fits in registers; aprox13 exceeds the Volta cap.
    auto small = burnKernelInfo(2, 50.0, 1.0);
    auto big = burnKernelInfo(13, 50.0, 1.0);
    EXPECT_LT(small.regs_per_thread, 255);
    EXPECT_GT(big.regs_per_thread, 255);
    EXPECT_GT(big.flops_per_zone, small.flops_per_zone);
    auto skew = burnKernelInfo(13, 50.0, 25.0);
    EXPECT_DOUBLE_EQ(skew.work_imbalance, 25.0);
}

TEST(BurnGridStats, ImbalanceMetric) {
    BurnGridStats s;
    s.zones = 100;
    s.total_steps = 1000;
    s.max_steps = 400;
    EXPECT_DOUBLE_EQ(s.meanSteps(), 10.0);
    EXPECT_DOUBLE_EQ(s.imbalance(), 40.0);
}
