// End-to-end fault-injection scenarios (ctest label: fault-injection).
//
// These drive whole runs — Sedov blasts, reacting bubbles, checkpoint
// round trips — with deterministic faults armed mid-flight, and assert
// the acceptance criteria of the robustness layer: a faulted guarded run
// completes with the same conservation invariants as the unfaulted run,
// and a corrupted checkpoint is rejected on restart naming the bad fab.

#include "castro/sedov.hpp"
#include "castro/validate.hpp"
#include "core/fault.hpp"
#include "maestro/maestro.hpp"
#include "mesh/plotfile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <filesystem>
#include <string>

using namespace exa;

namespace {

StepGuardOptions quietGuard() {
    StepGuardOptions g;
    g.enabled = true;
    g.verbose = false;
    return g;
}

struct TmpDir {
    std::string path;
    explicit TmpDir(const std::string& name)
        : path(std::string("/tmp/exastro_fault_") + name) {
        std::filesystem::remove_all(path);
    }
    ~TmpDir() { std::filesystem::remove_all(path); }
};

struct FaultInjection : ::testing::Test {
    void SetUp() override { fault::disarmAll(); }
    void TearDown() override { fault::disarmAll(); }
};

} // namespace

TEST_F(FaultInjection, SedovWithMidRunNanFluxKeepsCleanRunInvariants) {
    auto net = makeIgnitionSimple();

    // Run the same blast to t = 0.02 twice; the second copy takes a NaN
    // hydro flux at step 3 and must recover through the guard.
    auto run = [&](bool faulted) {
        castro::SedovParams p;
        p.ncell = 16;
        p.max_grid_size = 8;
        p.guard = quietGuard();
        auto c = p.build(net);
        const Real m0 = c->totalMass();
        const Real e0 = c->totalEnergy();
        int step = 0;
        while (c->time() < 0.02) {
            const Real dt = std::min(c->estimateDt(), 0.02 - c->time());
            if (faulted && step == 3) {
                fault::ScopedFault f(fault::Site::HydroNanFlux);
                c->step(dt);
            } else {
                c->step(dt);
            }
            ++step;
        }
        EXPECT_TRUE(
            castro::validateState(c->state(), net.nspec(), p.guard).ok());
        return std::array<Real, 3>{c->totalMass() / m0, c->totalEnergy() / e0,
                                   static_cast<Real>(c->retryStats().retries)};
    };

    const auto clean = run(false);
    const auto faulted = run(true);
    EXPECT_EQ(clean[2], 0.0);
    EXPECT_GE(faulted[2], 1.0);
    // Mass and energy obey the same conservation invariants in both runs:
    // drift at roundoff level while the shock is inside the domain.
    EXPECT_NEAR(clean[0], 1.0, 1e-10);
    EXPECT_NEAR(faulted[0], 1.0, 1e-10);
    EXPECT_NEAR(clean[1], 1.0, 1e-6);
    EXPECT_NEAR(faulted[1], 1.0, 1e-6);
}

TEST_F(FaultInjection, ReactingBubbleWithMidRunBurnFailureCompletes) {
    auto net = makeIgnitionSimple();
    maestro::BubbleParams p;
    p.ncell = 8;
    p.max_grid_size = 8;
    p.do_react = true;
    p.T_bubble = 1.0e9;
    p.guard = quietGuard();
    auto m = p.build(net);

    const Real dt = 1.0e-8;
    BurnGridStats last;
    for (int s = 0; s < 4; ++s) {
        if (s == 2) {
            fault::ScopedFault f(fault::Site::BurnZoneFailure);
            last = m->step(dt);
            EXPECT_EQ(fault::stats(fault::Site::BurnZoneFailure).fires, 1);
        } else {
            last = m->step(dt);
        }
    }
    EXPECT_GE(m->retryStats().retries, 1);
    EXPECT_EQ(m->stepCount(), 4);
    EXPECT_DOUBLE_EQ(m->time(), 4 * dt);
    EXPECT_EQ(last.failures, 0);

    // Species conservation invariant: every zone's mass fractions still
    // sum to one after the faulted, retried burn.
    const auto& s = m->state();
    Real worst = 0.0;
    for (std::size_t b = 0; b < s.size(); ++b) {
        auto q = s.const_array(static_cast<int>(b));
        const Box& vb = s.box(static_cast<int>(b));
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                    Real xsum = 0.0;
                    for (int n = 0; n < net.nspec(); ++n)
                        xsum += q(i, j, k, maestro::MaestroLayout::QFS + n);
                    worst = std::max(worst, std::abs(xsum - 1.0));
                }
    }
    EXPECT_LT(worst, 1.0e-8);
    EXPECT_GT(s.min(maestro::MaestroLayout::QT), 0.0);
}

TEST_F(FaultInjection, CheckpointCorruptedOnDiskIsRejectedOnRestart) {
    auto net = makeIgnitionSimple();
    castro::SedovParams p;
    p.ncell = 16;
    p.max_grid_size = 8;
    auto c = p.build(net);
    for (int s = 0; s < 2; ++s) c->step(c->estimateDt());

    TmpDir dir("checkpoint");
    const std::vector<std::string> names(
        static_cast<std::size_t>(c->state().nComp()), "u");

    // A clean checkpoint round-trips exactly.
    writePlotfile(dir.path, c->state(), c->geom(), names, c->time(), 2);
    {
        castro::SedovParams q = p;
        auto fresh = q.build(net);
        readPlotfileLevel(dir.path, 0, fresh->state());
        EXPECT_DOUBLE_EQ(fresh->totalMass(), c->totalMass());
        EXPECT_DOUBLE_EQ(fresh->totalEnergy(), c->totalEnergy());
    }

    // The same checkpoint written through a bit-flipping disk is detected
    // at restart, naming the corrupted fab.
    {
        fault::ScopedFault f(fault::Site::CheckpointBitFlip);
        writePlotfile(dir.path, c->state(), c->geom(), names, c->time(), 2);
    }
    auto fresh = p.build(net);
    try {
        readPlotfileLevel(dir.path, 0, fresh->state());
        FAIL() << "corrupted checkpoint was accepted";
    } catch (const std::runtime_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("fab 0"), std::string::npos) << msg;
        EXPECT_NE(msg.find("corrupted payload"), std::string::npos) << msg;
    }
}

TEST_F(FaultInjection, EnvStyleConfigDrivesAGuardedRun) {
    // The EXA_FAULTS string format, applied end-to-end: arm a one-shot
    // NaN flux and a one-shot halo corruption, then run a guarded blast.
    std::string err;
    ASSERT_TRUE(fault::configureFromString(
        "hydro-nan-flux:start=0,count=1;halo-payload-corrupt:start=150,count=1",
        &err))
        << err;

    auto net = makeIgnitionSimple();
    castro::SedovParams p;
    p.ncell = 16;
    p.max_grid_size = 8;
    p.guard = quietGuard();
    auto c = p.build(net);
    for (int s = 0; s < 4; ++s) c->step(c->estimateDt());

    EXPECT_EQ(fault::stats(fault::Site::HydroNanFlux).fires, 1);
    EXPECT_EQ(fault::stats(fault::Site::HaloPayloadCorrupt).fires, 1);
    EXPECT_GE(c->retryStats().retries, 1);
    EXPECT_TRUE(castro::validateState(c->state(), net.nspec(), p.guard).ok());
}

TEST_F(FaultInjection, AllocationFaultMidRunIsRecoverable) {
    auto net = makeIgnitionSimple();
    castro::SedovParams p;
    p.ncell = 8;
    p.max_grid_size = 8;
    p.guard = quietGuard();
    auto c = p.build(net);
    c->step(c->estimateDt());
    const Real dt = c->estimateDt();
    {
        // Hit 0 is the snapshot clone; land the failure a few allocations
        // later, inside the hydro advance.
        fault::Spec spec;
        spec.start = 3;
        fault::ScopedFault f(fault::Site::ArenaAllocFailure, spec);
        c->step(dt);
    }
    EXPECT_GE(c->retryStats().retries, 1);
    EXPECT_EQ(c->stepCount(), 2);
    EXPECT_TRUE(castro::validateState(c->state(), net.nspec(), p.guard).ok());
}
