#include "castro/castro_amr.hpp"
#include "castro/hydro.hpp"
#include "castro/sedov.hpp"
#include "core/fault.hpp"
#include "core/parallel_for.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

using namespace exa;
using namespace exa::castro;

namespace {

struct AmrBlast {
    std::unique_ptr<CastroAmr> amr;
    ReactionNetwork net = makeIgnitionSimple();
};

// The Sedov-like blast of test_castro_amr, optionally on a fully periodic
// domain (closed books: conservation must hold to round-off) and with an
// options hook for guard/react/rebalance configuration.
AmrBlast makeBlast(int max_level, bool periodic, int ncell = 16,
                   const std::function<void(CastroOptions&)>& tweak = {}) {
    AmrBlast b;
    Box dom({0, 0, 0}, {ncell - 1, ncell - 1, ncell - 1});
    Geometry geom(dom, {0, 0, 0}, {1, 1, 1},
                  periodic ? IntVect{1, 1, 1} : IntVect{0, 0, 0});
    AmrInfo info;
    info.max_level = max_level;
    info.ref_ratio = 2;
    info.max_grid_size = 16;
    info.blocking_factor = 4;
    info.n_error_buf = 1;
    info.nranks = 2;

    CastroOptions opt;
    opt.bc = periodic ? DomainBC::allPeriodic() : DomainBC::allOutflow();
    opt.cfl = 0.3;
    if (tweak) tweak(opt);

    const Real r_init = 2.0 / ncell;
    const Real e_in = 1.0 / ((4.0 / 3.0) * constants::pi * r_init * r_init * r_init);
    Castro::InitFn init = [=](Real x, Real y, Real z) {
        Castro::InitialZone zn;
        zn.rho = 1.0;
        const Real r = std::sqrt((x - 0.5) * (x - 0.5) + (y - 0.5) * (y - 0.5) +
                                 (z - 0.5) * (z - 0.5));
        zn.p = r <= r_init ? 0.4 * e_in : 1.0e-5;
        zn.X = {1.0, 0.0};
        return zn;
    };
    CastroAmr::TagFn tag = [](int /*lev*/, const Geometry&, const MultiFab& s,
                              MultiFab& tags) {
        const Real thresh = 1.0e-8;
        for (std::size_t f = 0; f < tags.size(); ++f) {
            auto t = tags.array(static_cast<int>(f));
            auto u = s.const_array(static_cast<int>(f));
            ParallelFor(tags.box(static_cast<int>(f)), [=](int i, int j, int k) {
                if (u(i, j, k, StateLayout::UTEMP) > thresh) t(i, j, k) = 1.0;
            });
        }
    };

    Eos eos{GammaLawEos{1.4}};
    b.amr = std::make_unique<CastroAmr>(geom, info, b.net, eos, opt,
                                        std::move(init), std::move(tag));
    b.amr->init();
    return b;
}

// A smooth density wave advected by a uniform diagonal velocity across a
// fixed refined patch (coarse zones [4..11]^3): every coarse/fine face
// carries nonzero mass flux, so any register accounting error shows up as
// a conservation drift. Periodic domain; freeze regrids.
AmrBlast makeFlow(int ncell = 16) {
    AmrBlast b;
    Box dom({0, 0, 0}, {ncell - 1, ncell - 1, ncell - 1});
    Geometry geom(dom, {0, 0, 0}, {1, 1, 1}, IntVect{1, 1, 1});
    AmrInfo info;
    info.max_level = 1;
    info.ref_ratio = 2;
    info.max_grid_size = 16;
    info.blocking_factor = 4;
    info.n_error_buf = 0;
    info.nranks = 2;

    CastroOptions opt;
    opt.bc = DomainBC::allPeriodic();
    opt.cfl = 0.3;

    Castro::InitFn init = [](Real x, Real y, Real /*z*/) {
        Castro::InitialZone zn;
        zn.rho = 1.0 + 0.2 * std::sin(2.0 * constants::pi * x) +
                 0.1 * std::cos(2.0 * constants::pi * y);
        zn.p = 1.0;
        zn.vel = {0.5, 0.3, 0.2};
        zn.X = {1.0, 0.0};
        return zn;
    };
    // The refined patch covers the middle half of the domain in each
    // direction ([4..11] at ncell = 16), so the coarse/fine interface
    // sits at the same physical location at every resolution.
    const int tlo = ncell / 4, thi = 3 * ncell / 4 - 1;
    CastroAmr::TagFn tag = [=](int /*lev*/, const Geometry&, const MultiFab&,
                               MultiFab& tags) {
        for (std::size_t f = 0; f < tags.size(); ++f) {
            auto t = tags.array(static_cast<int>(f));
            ParallelFor(tags.box(static_cast<int>(f)), [=](int i, int j, int k) {
                if (i >= tlo && i <= thi && j >= tlo && j <= thi && k >= tlo &&
                    k <= thi)
                    t(i, j, k) = 1.0;
            });
        }
    };

    Eos eos{GammaLawEos{1.4}};
    b.amr = std::make_unique<CastroAmr>(geom, info, b.net, eos, opt,
                                        std::move(init), std::move(tag));
    b.amr->regrid_interval = 0;
    b.amr->init();
    return b;
}

// L-infinity distance between the valid zones of two same-layout states.
Real maxAbsDiff(const MultiFab& a, const MultiFab& b) {
    EXPECT_EQ(a.size(), b.size());
    Real m = 0.0;
    for (std::size_t f = 0; f < a.size(); ++f) {
        const int fi = static_cast<int>(f);
        auto x = a.const_array(fi);
        auto y = b.const_array(fi);
        const Box& vb = a.box(fi);
        for (int n = 0; n < a.nComp(); ++n)
            for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
                for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                    for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i)
                        m = std::max(m, std::abs(x(i, j, k, n) - y(i, j, k, n)));
    }
    return m;
}

} // namespace

// --- The refluxing foundation: molRhs's fluxes out-param ----------------

TEST(MolRhsFluxes, DivergenceMatchesUpdateOnEveryBackend) {
    // The returned face fluxes must BE the update: dU/dt == -div F zone
    // by zone, the total over a periodic domain must telescope to zero
    // for the conserved components, and a region-split sweep must
    // reproduce the fused sweep bit-for-bit — on all four backends.
    auto net = makeIgnitionSimple();
    Eos eos{GammaLawEos{1.4}};
    const int n = 16;
    Box dom({0, 0, 0}, {n - 1, n - 1, n - 1});
    Geometry geom(dom, {0, 0, 0}, {1, 1, 1}, IntVect{1, 1, 1});
    BoxArray ba(dom);
    ba.maxSize(8);
    DistributionMapping dm(ba, 2);
    const StateLayout S(net.nspec());
    const int nc = S.ncomp();

    for (const Backend be :
         {Backend::Serial, Backend::OpenMP, Backend::SimGpu, Backend::Debug}) {
        SCOPED_TRACE(static_cast<int>(be));
        ScopedBackend sb(be);

        MultiFab state(ba, dm, nc, 4);
        state.setVal(0.0);
        for (std::size_t f = 0; f < state.size(); ++f) {
            auto u = state.array(static_cast<int>(f));
            const Box& vb = state.box(static_cast<int>(f));
            for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
                for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                    for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                        const Real x = (i + 0.5) / n, y = (j + 0.5) / n;
                        const Real rho = 1.0 + 0.3 * std::sin(2 * constants::pi * x);
                        EosState es;
                        es.rho = rho;
                        es.p = 1.0 + 0.1 * std::cos(2 * constants::pi * y);
                        es.abar = net.abar(std::array<Real, 2>{1.0, 0.0}.data());
                        es.ye = 0.5;
                        eos.rhoP(es);
                        u(i, j, k, StateLayout::URHO) = rho;
                        u(i, j, k, StateLayout::UMX) = rho * 0.2;
                        u(i, j, k, StateLayout::UEDEN) =
                            rho * es.e + 0.5 * rho * 0.2 * 0.2;
                        u(i, j, k, StateLayout::UTEMP) = es.T;
                        u(i, j, k, StateLayout::UFS) = rho;
                    }
        }
        state.FillBoundary(0, nc, geom.periodicity());

        MultiFab dudt(ba, dm, nc, 0);
        auto fluxes = makeFluxFabs(ba, dm, nc);
        molRhs(state, dudt, geom, net, eos, &fluxes);

        // Zone-wise: the out-param fluxes reproduce the update.
        const Real dxi = 1.0 / geom.cellSize(0);
        const Real dyi = 1.0 / geom.cellSize(1);
        const Real dzi = 1.0 / geom.cellSize(2);
        Real defect = 0.0, scale = 0.0;
        for (std::size_t f = 0; f < dudt.size(); ++f) {
            const int fi = static_cast<int>(f);
            auto du = dudt.const_array(fi);
            auto fx = fluxes[0].const_array(fi);
            auto fy = fluxes[1].const_array(fi);
            auto fz = fluxes[2].const_array(fi);
            const Box& vb = dudt.box(fi);
            for (int c = 0; c < nc; ++c)
                for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
                    for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                        for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                            const Real div =
                                -(fx(i + 1, j, k, c) - fx(i, j, k, c)) * dxi -
                                (fy(i, j + 1, k, c) - fy(i, j, k, c)) * dyi -
                                (fz(i, j, k + 1, c) - fz(i, j, k, c)) * dzi;
                            defect = std::max(defect,
                                              std::abs(du(i, j, k, c) - div));
                            scale = std::max(scale, std::abs(du(i, j, k, c)));
                        }
        }
        EXPECT_LE(defect, 1e-12 * std::max(scale, Real(1.0)));

        // Domain total: conserved components telescope to zero over the
        // periodic domain.
        const Real vol = geom.cellVolume();
        for (const int c : {StateLayout::URHO, StateLayout::UMX,
                            StateLayout::UEDEN, StateLayout::UFS}) {
            Real total = 0.0, mag = 0.0;
            for (std::size_t f = 0; f < dudt.size(); ++f) {
                const int fi = static_cast<int>(f);
                total += dudt.fab(fi).sum(dudt.box(fi), c) * vol;
                mag += std::abs(dudt.fab(fi).sum(dudt.box(fi), c)) * vol;
            }
            EXPECT_LE(std::abs(total), 1e-11 * std::max(mag, Real(1.0)))
                << "comp " << c;
        }

        // Region-split sweep (the async-halo interior/boundary pattern)
        // is bit-identical, fluxes included.
        MultiFab dudt2(ba, dm, nc, 0);
        auto fluxes2 = makeFluxFabs(ba, dm, nc);
        for (std::size_t f = 0; f < state.size(); ++f) {
            const int fi = static_cast<int>(f);
            const Box& vb = state.box(fi);
            const Box inner = grow(vb, -2);
            molRhsRegion(state, dudt2, fi, inner, geom, net, eos, &fluxes2);
            for (const Box& shell : boxDiff(vb, inner)) {
                molRhsRegion(state, dudt2, fi, shell, geom, net, eos, &fluxes2);
            }
        }
        EXPECT_EQ(maxAbsDiff(dudt, dudt2), 0.0);
        for (int d = 0; d < 3; ++d) {
            EXPECT_EQ(maxAbsDiff(fluxes[d], fluxes2[d]), 0.0) << "dim " << d;
        }
    }
}

// --- Subcycled stepping: conservation and consistency -------------------

TEST(AmrSubcycle, TwoLevelPeriodicRunConservesToRoundoff) {
    auto b = makeBlast(1, /*periodic=*/true);
    ASSERT_EQ(b.amr->finestLevel(), 1);
    const Real m0 = b.amr->totalMass();
    const Real e0 = b.amr->totalEnergy();
    for (int s = 0; s < 4; ++s) {
        b.amr->step(b.amr->estimateDt());
        EXPECT_TRUE(b.amr->syncPointSumsAgree()) << "step " << s;
    }
    EXPECT_NEAR(b.amr->totalMass() / m0, 1.0, 1e-12);
    EXPECT_NEAR(b.amr->totalEnergy() / e0, 1.0, 1e-12);
}

TEST(AmrSubcycle, ThreeLevelPeriodicRunConservesToRoundoff) {
    auto b = makeBlast(2, /*periodic=*/true);
    ASSERT_EQ(b.amr->finestLevel(), 2);
    const Real m0 = b.amr->totalMass();
    const Real e0 = b.amr->totalEnergy();
    for (int s = 0; s < 2; ++s) {
        b.amr->step(b.amr->estimateDt());
        EXPECT_TRUE(b.amr->syncPointSumsAgree()) << "step " << s;
    }
    EXPECT_NEAR(b.amr->totalMass() / m0, 1.0, 1e-12);
    EXPECT_NEAR(b.amr->totalEnergy() / e0, 1.0, 1e-12);
}

TEST(AmrSubcycle, NonSubcycledModeConservesThroughTheSameRegisters) {
    auto b = makeBlast(1, /*periodic=*/true);
    b.amr->subcycle = false;
    const Real m0 = b.amr->totalMass();
    for (int s = 0; s < 2; ++s) b.amr->step(b.amr->estimateDt());
    EXPECT_NEAR(b.amr->totalMass() / m0, 1.0, 1e-12);
    // One advance per level per step: no subcycling happened.
    EXPECT_EQ(b.amr->advanceCount(0), 2);
    EXPECT_EQ(b.amr->advanceCount(1), 2);
}

TEST(AmrSubcycle, RefluxOffLeaksWhatRefluxRepays) {
    // Same flow with registers disabled: the coarse/fine interface —
    // active on every face in this advected-wave setup — leaks at
    // truncation level, orders of magnitude above the refluxed drift.
    auto on = makeFlow();
    auto off = makeFlow();
    off.amr->reflux = false;
    ASSERT_EQ(on.amr->finestLevel(), 1);
    const Real m_on = on.amr->totalMass();
    const Real m_off = off.amr->totalMass();
    for (int s = 0; s < 3; ++s) {
        on.amr->step(on.amr->estimateDt());
        off.amr->step(off.amr->estimateDt());
    }
    const Real drift_on = std::abs(on.amr->totalMass() / m_on - 1.0);
    const Real drift_off = std::abs(off.amr->totalMass() / m_off - 1.0);
    EXPECT_LE(drift_on, 1e-12);
    EXPECT_GT(drift_off, 100.0 * std::max(drift_on, Real(1e-15)));
}

TEST(AmrSubcycle, SubcycledMatchesNonSubcycledToTruncationOrder) {
    // Both couplings solve the same PDE: after a handful of coarse steps
    // the states differ only at the coarse/fine coupling's truncation
    // level, not at O(1).
    auto a = makeBlast(1, /*periodic=*/true);
    auto c = makeBlast(1, /*periodic=*/true);
    c.amr->subcycle = false;
    const Real dt = c.amr->estimateDt(); // finest-limited: stable for both
    for (int s = 0; s < 6; ++s) {
        a.amr->step(dt);
        c.amr->step(dt);
    }
    const Real scale = a.amr->state(0).max(StateLayout::URHO);
    Real diff = 0.0;
    for (std::size_t f = 0; f < a.amr->state(0).size(); ++f) {
        const int fi = static_cast<int>(f);
        auto x = a.amr->state(0).const_array(fi);
        auto y = c.amr->state(0).const_array(fi);
        const Box& vb = a.amr->state(0).box(fi);
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i)
                    diff = std::max(diff,
                                    std::abs(x(i, j, k, StateLayout::URHO) -
                                             y(i, j, k, StateLayout::URHO)));
    }
    EXPECT_GT(diff, 0.0);          // genuinely different couplings
    EXPECT_LT(diff, 0.05 * scale); // but the same answer to truncation
}

TEST(AmrSubcycle, SubcycledCouplingConvergesUnderRefinement) {
    // Richardson 2-point dx sweep on the smooth advected wave: the
    // subcycled-vs-non-subcycled discrepancy at a fixed final time is a
    // pure coupling truncation term and must shrink at the scheme's
    // order as dx (and dt with it) is halved. Measured in L1 — the PLM
    // limiter clips smooth extrema pointwise, so L-infinity stalls at
    // first order on isolated zones while the field-wide coupling error
    // converges at the limiter-constrained rate. Pins the order of the
    // subcycled time stepping: measured p = log2(e_16 / e_32) ~ 1.55
    // (between the formal SSP-RK2 order and the limiter's first-order
    // floor); anything near 1.0 means the coarse/fine coupling degraded
    // to plain first order. (The 8/16 pair is still pre-asymptotic in
    // both norms; 16/32 is the first pair in the convergent regime.)
    const Real t_final = 0.032;
    auto errAt = [&](int ncell) {
        auto a = makeFlow(ncell);
        auto c = makeFlow(ncell);
        c.amr->subcycle = false;
        const Real dt = t_final / (ncell / 2); // dt ~ dx, well below CFL
        for (int s = 0; s < ncell / 2; ++s) {
            a.amr->step(dt);
            c.amr->step(dt);
        }
        // L1 of the level-0 density difference.
        Real sum = 0.0;
        std::int64_t nz = 0;
        const MultiFab& x = a.amr->state(0);
        const MultiFab& y = c.amr->state(0);
        for (std::size_t f = 0; f < x.size(); ++f) {
            const int fi = static_cast<int>(f);
            auto xa = x.const_array(fi);
            auto ya = y.const_array(fi);
            const Box& vb = x.box(fi);
            for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
                for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                    for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                        sum += std::abs(xa(i, j, k, StateLayout::URHO) -
                                        ya(i, j, k, StateLayout::URHO));
                        ++nz;
                    }
        }
        return sum / static_cast<Real>(nz);
    };
    const Real e16 = errAt(16);
    const Real e32 = errAt(32);
    ASSERT_GT(e16, 0.0);
    ASSERT_GT(e32, 0.0);
    const Real order = std::log2(e16 / e32);
    std::printf("  [subcycle sweep] L1 e16=%.3g e32=%.3g order %.2f\n",
                double(e16), double(e32), double(order));
    EXPECT_GE(order, 1.3) << "e16=" << e16 << " e32=" << e32;
    EXPECT_LE(order, 3.5) << "e16=" << e16 << " e32=" << e32;
}

TEST(AmrSubcycle, SubcycleCountsFollowTheRefinementRatio) {
    auto b = makeBlast(2, /*periodic=*/false);
    ASSERT_EQ(b.amr->finestLevel(), 2);
    EXPECT_TRUE(b.amr->fluxRegister(1).isDefined());
    EXPECT_TRUE(b.amr->fluxRegister(2).isDefined());
    b.amr->step(b.amr->estimateDt());
    EXPECT_EQ(b.amr->advanceCount(0), 1);
    EXPECT_EQ(b.amr->advanceCount(1), 2);
    EXPECT_EQ(b.amr->advanceCount(2), 4);
}

// --- Satellite regressions ----------------------------------------------

TEST(AmrSubcycle, CoarseStateUnderFineGridsIsEosConsistentAfterBurnStep) {
    // Regression: the post-burn averageDown used to skip the consistency
    // sweep, leaving covered coarse temperatures off the EOS (averaging
    // T linearly is not the EOS of the averaged conserved state). After a
    // reacting step, re-enforcing consistency must be a no-op.
    auto b = makeBlast(1, /*periodic=*/false, 16, [](CastroOptions& o) {
        o.do_react = true;
    });
    b.amr->step(b.amr->estimateDt());

    const MultiFab& s0 = b.amr->state(0);
    MultiFab check(s0.boxArray(), s0.distributionMap(), s0.nComp(), s0.nGrow());
    MultiFab::Copy(check, s0, 0, 0, s0.nComp(), 0);
    enforceConsistency(check, b.net, Eos{GammaLawEos{1.4}});
    const Real scale = s0.max(StateLayout::UTEMP);
    EXPECT_LE(maxAbsDiff(check, s0), 1e-12 * std::max(scale, Real(1.0)));
}

TEST(AmrSubcycle, MaskedSumsSeeFineLevelOnlyChanges) {
    // Regression: totalMass/totalEnergy used to read level 0 only, which
    // is blind to fine-level state the coarse level has not yet averaged
    // in (mid-substep, or after a fine-only repair).
    auto b = makeBlast(1, /*periodic=*/true);
    const Real m0 = b.amr->totalMass();
    EXPECT_TRUE(b.amr->syncPointSumsAgree());
    const Real lev0_before =
        b.amr->state(0).sum(StateLayout::URHO) * b.amr->geom(0).cellVolume();

    // Perturb one covered fine zone: the hierarchy sum must move by the
    // fine-zone mass, the level-0 shortcut must not move at all.
    MultiFab& s1 = b.amr->state(1);
    const Box& vb = s1.box(0);
    const IntVect z = vb.smallEnd();
    const Real delta = 0.125;
    s1.array(0)(z.x, z.y, z.z, StateLayout::URHO) += delta;

    const Real fine_vol = b.amr->geom(1).cellVolume();
    EXPECT_NEAR(b.amr->totalMass() - m0, delta * fine_vol,
                1e-12 * std::max(m0, Real(1.0)));
    const Real lev0_after =
        b.amr->state(0).sum(StateLayout::URHO) * b.amr->geom(0).cellVolume();
    EXPECT_EQ(lev0_before, lev0_after);
    EXPECT_FALSE(b.amr->syncPointSumsAgree());
}

TEST(AmrSubcycle, GuardRetryOfMidSubcycleFaultReplaysCleanSubstepRun) {
    // A NaN injected into the second fine substep invalidates the guarded
    // step; the rollback must rewind the partially-subcycled hierarchy —
    // states AND per-level times — so the dt/2-substep retry reproduces,
    // bit for bit, a clean run that took two dt/2 steps from the same
    // initial condition.
    auto a = makeBlast(1, /*periodic=*/true, 16, [](CastroOptions& o) {
        o.guard.enabled = true;
        o.guard.verbose = false;
    });
    auto c = makeBlast(1, /*periodic=*/true);
    a.amr->regrid_interval = 0;
    c.amr->regrid_interval = 0;
    ASSERT_EQ(a.amr->finestLevel(), 1);

    const Real dt = c.amr->estimateDt();
    const auto nfabs0 = static_cast<std::int64_t>(a.amr->state(0).size());
    const auto nfabs1 = static_cast<std::int64_t>(a.amr->state(1).size());
    {
        // Hit order per attempt: level-0 advance (2 RK sweeps), fine
        // substep 1 (2 sweeps), fine substep 2 — fire on its first fab.
        fault::Spec spec;
        spec.start = 2 * nfabs0 + 2 * nfabs1;
        spec.count = 1;
        fault::ScopedFault f(fault::Site::HydroNanFlux, spec);
        a.amr->step(dt);
    }
    EXPECT_EQ(a.amr->retryStats().retries, 1);

    c.amr->step(0.5 * dt);
    c.amr->step(0.5 * dt);

    for (int lev = 0; lev <= 1; ++lev) {
        EXPECT_EQ(maxAbsDiff(a.amr->state(lev), c.amr->state(lev)), 0.0)
            << "level " << lev;
    }
    EXPECT_DOUBLE_EQ(a.amr->time(), c.amr->time());
}
