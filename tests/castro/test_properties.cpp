// Property-based sweeps across module boundaries: randomized states and
// parameter grids exercising invariants that must hold everywhere, not
// just at hand-picked points.

#include "castro/hydro.hpp"
#include "microphysics/bdf.hpp"
#include "microphysics/burner.hpp"
#include "core/parallel_for.hpp"
#include "solvers/multigrid.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

using namespace exa;
using namespace exa::castro;

// ---------------------------------------------------------------------
// HLLC properties over randomized states.
// ---------------------------------------------------------------------

namespace {

std::vector<Real> randomPrim(std::mt19937& gen, int nspec) {
    std::uniform_real_distribution<double> u(0.1, 3.0);
    std::uniform_real_distribution<double> v(-1.0, 1.0);
    PrimLayout Q(nspec);
    std::vector<Real> q(Q.ncomp());
    q[PrimLayout::QRHO] = u(gen);
    q[PrimLayout::QU] = v(gen);
    q[PrimLayout::QV] = v(gen);
    q[PrimLayout::QW] = v(gen);
    q[PrimLayout::QP] = u(gen);
    q[PrimLayout::QREINT] = q[PrimLayout::QP] / 0.4;
    q[PrimLayout::QC] = std::sqrt(1.4 * q[PrimLayout::QP] / q[PrimLayout::QRHO]);
    Real xsum = 0.0;
    for (int n = 0; n < nspec; ++n) {
        q[PrimLayout::QFS + n] = u(gen);
        xsum += q[PrimLayout::QFS + n];
    }
    for (int n = 0; n < nspec; ++n) q[PrimLayout::QFS + n] /= xsum;
    return q;
}

// Mirror a state across the x face (flip normal velocity).
std::vector<Real> mirrored(std::vector<Real> q) {
    q[PrimLayout::QU] = -q[PrimLayout::QU];
    return q;
}

} // namespace

class HllcRandomStates : public ::testing::TestWithParam<int> {};

TEST_P(HllcRandomStates, ConsistencyAndMirrorSymmetry) {
    std::mt19937 gen(GetParam());
    const int nspec = 2;
    StateLayout S(nspec);
    for (int trial = 0; trial < 50; ++trial) {
        auto ql = randomPrim(gen, nspec);
        auto qr = randomPrim(gen, nspec);

        // Consistency: F(q, q) is the exact physical flux of q.
        std::vector<Real> f(S.ncomp());
        hllcFlux(ql.data(), ql.data(), nspec, 0, f.data());
        const Real rho = ql[PrimLayout::QRHO], un = ql[PrimLayout::QU];
        ASSERT_NEAR(f[StateLayout::URHO], rho * un, 1e-12);
        ASSERT_NEAR(f[StateLayout::UMX],
                    rho * un * un + ql[PrimLayout::QP], 1e-12);

        // Mirror symmetry: flipping both states and the axis negates the
        // mass flux and preserves the momentum flux.
        std::vector<Real> fab(S.ncomp()), fba(S.ncomp());
        hllcFlux(ql.data(), qr.data(), nspec, 0, fab.data());
        hllcFlux(mirrored(qr).data(), mirrored(ql).data(), nspec, 0, fba.data());
        ASSERT_NEAR(fab[StateLayout::URHO], -fba[StateLayout::URHO],
                    1e-11 * (1 + std::abs(fab[StateLayout::URHO])));
        ASSERT_NEAR(fab[StateLayout::UMX], fba[StateLayout::UMX],
                    1e-11 * (1 + std::abs(fab[StateLayout::UMX])));
        ASSERT_NEAR(fab[StateLayout::UEDEN], -fba[StateLayout::UEDEN],
                    1e-11 * (1 + std::abs(fab[StateLayout::UEDEN])));

        // Species fluxes are a convex partition of the mass flux.
        Real sf = 0.0;
        for (int n = 0; n < nspec; ++n) sf += fab[StateLayout::UFS + n];
        ASSERT_NEAR(sf, fab[StateLayout::URHO],
                    1e-11 * (1 + std::abs(fab[StateLayout::URHO])));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HllcRandomStates, ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------------
// EOS thermodynamic-consistency sweep over the (rho, T) plane.
// ---------------------------------------------------------------------

class EosConsistency
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(EosConsistency, HelmLiteIsThermodynamicallySane) {
    auto [lrho, lT] = GetParam();
    const Real rho = std::pow(10.0, lrho);
    const Real T = std::pow(10.0, lT);
    HelmLiteEos eos;
    EosState s;
    s.rho = rho;
    s.T = T;
    s.abar = 13.7;
    s.ye = 0.5;
    eos.rhoT(s);
    EXPECT_GT(s.p, 0.0);
    EXPECT_GT(s.e, 0.0);
    EXPECT_GT(s.cv, 0.0);
    EXPECT_GT(s.dpdr, 0.0);  // mechanical stability
    EXPECT_GT(s.dpdT, 0.0);
    EXPECT_GT(s.gamma1, 1.0);
    EXPECT_LT(s.gamma1, 3.0);
    EXPECT_LT(s.cs, constants::c_light);

    // (dp/drho)_T finite-difference check: 1% tolerance.
    EosState sp = s;
    sp.rho = rho * 1.001;
    eos.rhoT(sp);
    const Real fd = (sp.p - s.p) / (rho * 0.001);
    EXPECT_NEAR(fd / s.dpdr, 1.0, 0.02);

    // rhoE inversion consistency everywhere on the grid.
    EosState inv;
    inv.rho = rho;
    inv.e = s.e;
    inv.abar = s.abar;
    inv.ye = s.ye;
    eos.rhoE(inv);
    EXPECT_NEAR(inv.T / T, 1.0, 1e-5);
}

// The grid covers the white-dwarf regime the EOS is built for. (At very
// low density and T ~ 4e9 K the gas is radiation dominated and this
// non-relativistic formulation returns cs > c — production Helmholtz
// carries the relativistic corrections; ours documents the limit here.)
INSTANTIATE_TEST_SUITE_P(
    RhoTGrid, EosConsistency,
    ::testing::Combine(::testing::Values(4.0, 5.0, 6.0, 8.0),   // log10 rho
                       ::testing::Values(7.0, 8.0, 9.0, 9.6))); // log10 T

// ---------------------------------------------------------------------
// BDF order-of-accuracy sweep.
// ---------------------------------------------------------------------

namespace {
class Oscillator final : public OdeSystem {
public:
    int size() const override { return 2; }
    void rhs(Real, const std::vector<Real>& y, std::vector<Real>& f) override {
        f.resize(2);
        f[0] = y[1];
        f[1] = -y[0];
    }
    void jacobian(Real, const std::vector<Real>&, DenseMatrix& j) override {
        j.setZero();
        j(0, 1) = 1.0;
        j(1, 0) = -1.0;
    }
};
} // namespace

class BdfAccuracy : public ::testing::TestWithParam<double> {};

TEST_P(BdfAccuracy, ErrorShrinksWithTolerance) {
    const double rtol = GetParam();
    Oscillator sys;
    std::vector<Real> y = {1.0, 0.0};
    OdeOptions opt;
    opt.rtol = rtol;
    opt.atol = rtol * 1e-3;
    BdfIntegrator bdf;
    auto st = bdf.integrate(sys, y, 0.0, 3.0, opt);
    ASSERT_TRUE(st.success);
    const Real err = std::abs(y[0] - std::cos(3.0)) + std::abs(y[1] + std::sin(3.0));
    // Global error tracks the tolerance within ~three orders of magnitude.
    EXPECT_LT(err, 1000.0 * rtol + 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Tols, BdfAccuracy, ::testing::Values(1e-4, 1e-6, 1e-8));

// ---------------------------------------------------------------------
// Multigrid over anisotropic cell sizes.
// ---------------------------------------------------------------------

class MgAnisotropy : public ::testing::TestWithParam<double> {};

TEST_P(MgAnisotropy, ConvergesWithStretchedZones) {
    const double stretch = GetParam();
    const int n = 16;
    Box dom({0, 0, 0}, {n - 1, n - 1, n - 1});
    Geometry geom(dom, {0, 0, 0}, {1.0, 1.0, stretch}, IntVect{1, 1, 1});
    BoxArray ba(dom);
    ba.maxSize(8);
    DistributionMapping dm(ba, 2);
    MultiFab phi(ba, dm, 1, 1), rhs(ba, dm, 1, 0);
    phi.setVal(0.0);
    const Real pi = constants::pi;
    for (std::size_t i = 0; i < rhs.size(); ++i) {
        auto r = rhs.array(static_cast<int>(i));
        ParallelFor(rhs.box(static_cast<int>(i)), [=, &geom](int ii, int j, int kk) {
            r(ii, j, kk) = std::sin(2 * pi * geom.cellCenter(0, ii)) *
                           std::sin(2 * pi * geom.cellCenter(1, j) ) *
                           std::sin(2 * pi * geom.cellCenter(2, kk) / stretch);
        });
    }
    Multigrid::Options opt;
    opt.max_vcycles = 200; // anisotropy slows point smoothers
    Multigrid mg(geom, MgBC::Periodic, opt);
    auto res = mg.solve(phi, rhs);
    EXPECT_TRUE(res.converged);
}

INSTANTIATE_TEST_SUITE_P(Stretch, MgAnisotropy, ::testing::Values(1.0, 2.0));

// ---------------------------------------------------------------------
// Burn invariants over a parameter grid.
// ---------------------------------------------------------------------

class BurnInvariants
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(BurnInvariants, MassFractionsNormalizedEnergyPositive) {
    auto [lrho, lT] = GetParam();
    auto net = makeAprox13();
    Eos eos{HelmLiteEos{}};
    std::vector<Real> X(13, 0.0);
    X[0] = 0.05;
    X[1] = 0.5;
    X[2] = 0.45;
    auto r = burnZone(net, eos, std::pow(10.0, lrho), std::pow(10.0, lT), X.data(),
                      1.0e-8);
    ASSERT_TRUE(r.success);
    Real xsum = 0.0;
    for (Real x : r.X) {
        EXPECT_GE(x, 0.0);
        EXPECT_LE(x, 1.0);
        xsum += x;
    }
    EXPECT_NEAR(xsum, 1.0, 1e-10);
    EXPECT_GE(r.e_nuc, -1e-8); // fusion of light fuel releases energy
    EXPECT_GE(r.T, std::pow(10.0, lT) * 0.999);
}

INSTANTIATE_TEST_SUITE_P(Grid, BurnInvariants,
                         ::testing::Combine(::testing::Values(6.0, 7.5),
                                            ::testing::Values(8.8, 9.3, 9.6)));
