#include "castro/castro_amr.hpp"
#include "castro/sedov.hpp"
#include "core/parallel_for.hpp"

#include <gtest/gtest.h>

#include <cmath>

using namespace exa;
using namespace exa::castro;

namespace {

// Sedov-like blast with AMR tagging on pressure (tracks the hot region).
struct AmrBlast {
    std::unique_ptr<CastroAmr> amr;
    ReactionNetwork net = makeIgnitionSimple();
};

AmrBlast makeAmrBlast(int max_level, int ncell = 16) {
    AmrBlast b;
    Box dom({0, 0, 0}, {ncell - 1, ncell - 1, ncell - 1});
    Geometry geom(dom, {0, 0, 0}, {1, 1, 1});
    AmrInfo info;
    info.max_level = max_level;
    info.ref_ratio = 2;
    info.max_grid_size = 16;
    info.blocking_factor = 4;
    info.n_error_buf = 1;
    info.nranks = 2;

    CastroOptions opt;
    opt.bc = DomainBC::allOutflow();
    opt.cfl = 0.3;

    const Real r_init = 2.0 / ncell;
    const Real e_in = 1.0 / ((4.0 / 3.0) * constants::pi * r_init * r_init * r_init);
    Castro::InitFn init = [=](Real x, Real y, Real z) {
        Castro::InitialZone zn;
        zn.rho = 1.0;
        const Real r = std::sqrt((x - 0.5) * (x - 0.5) + (y - 0.5) * (y - 0.5) +
                                 (z - 0.5) * (z - 0.5));
        zn.p = r <= r_init ? 0.4 * e_in : 1.0e-5;
        zn.X = {1.0, 0.0};
        return zn;
    };
    CastroAmr::TagFn tag = [](int /*lev*/, const Geometry&, const MultiFab& s,
                              MultiFab& tags) {
        // Tag hot material. The blast deposit sits at T ~ 7e-6 in this
        // setup's gamma-law units (abar = 12); ambient is ~1e-12.
        const Real thresh = 1.0e-8;
        for (std::size_t f = 0; f < tags.size(); ++f) {
            auto t = tags.array(static_cast<int>(f));
            auto u = s.const_array(static_cast<int>(f));
            ParallelFor(tags.box(static_cast<int>(f)), [=](int i, int j, int k) {
                if (u(i, j, k, StateLayout::UTEMP) > thresh) t(i, j, k) = 1.0;
            });
        }
    };

    Eos eos{GammaLawEos{1.4}};
    b.amr = std::make_unique<CastroAmr>(geom, info, b.net, eos, opt,
                                        std::move(init), std::move(tag));
    b.amr->init();
    return b;
}

} // namespace

TEST(CastroAmr, InitBuildsRefinedLevelOverBlast) {
    auto b = makeAmrBlast(1);
    EXPECT_EQ(b.amr->finestLevel(), 1);
    // The refined level covers the blast center but not the whole domain.
    const Box fine = b.amr->boxArray(1).minimalBox();
    EXPECT_TRUE(fine.contains(16, 16, 16)); // center at level-1 indices
    EXPECT_LT(b.amr->coveredFraction(1), 0.8);
    // Coarse data under fine grids agrees after init interpolation: the
    // blast energy appears on both levels.
    EXPECT_GT(b.amr->state(1).max(StateLayout::UTEMP), 1e-6);
}

TEST(CastroAmr, ConservesMassOnClosedDomain) {
    auto b = makeAmrBlast(1);
    const Real m0 = b.amr->totalMass();
    for (int s = 0; s < 4; ++s) {
        b.amr->step(b.amr->estimateDt());
    }
    // Nothing reaches the outflow boundaries this early; average_down
    // keeps the coarse sum representative. Without refluxing the c/f
    // faces leak at truncation level, not conservation level.
    EXPECT_NEAR(b.amr->totalMass() / m0, 1.0, 5e-3);
}

TEST(CastroAmr, ShockMatchesSingleLevelReference) {
    // The AMR run (coarse 16^3 + one 2x level) should track the shock of
    // a uniform 32^3 run to within a couple of fine zones.
    auto b = makeAmrBlast(1);
    auto net = makeIgnitionSimple();
    SedovParams sp;
    sp.ncell = 32;
    sp.max_grid_size = 16;
    sp.E = 0.4 * 3.0 / (1.4 - 1.0) / 3.0; // match the AmrBlast energy scale
    // Build a uniform reference with identical initial conditions by
    // advancing to the same time and comparing max density location
    // qualitatively (both must have expanded off-center).
    const Real t_end = 0.05;
    while (b.amr->time() < t_end) {
        b.amr->step(std::min(b.amr->estimateDt(), t_end - b.amr->time()));
    }
    // The blast front on the fine level has left the initial deposit zone.
    const auto& s1 = b.amr->state(1);
    Real rmax = 0.0;
    const Geometry& g1 = b.amr->geom(1);
    for (std::size_t f = 0; f < s1.size(); ++f) {
        auto u = s1.const_array(static_cast<int>(f));
        const Box& vb = s1.box(static_cast<int>(f));
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                    if (u(i, j, k, StateLayout::URHO) > 1.15) {
                        const Real x = g1.cellCenter(0, i) - 0.5;
                        const Real y = g1.cellCenter(1, j) - 0.5;
                        const Real z = g1.cellCenter(2, k) - 0.5;
                        rmax = std::max(rmax, std::sqrt(x * x + y * y + z * z));
                    }
                }
    }
    EXPECT_GT(rmax, 0.1);
    EXPECT_LT(rmax, 0.5);
}

TEST(CastroAmr, RegridFollowsTheShock) {
    auto b = makeAmrBlast(1);
    b.amr->regrid_interval = 2;
    const auto before = b.amr->boxArray(1);
    for (int s = 0; s < 16; ++s) b.amr->step(b.amr->estimateDt());
    const auto after = b.amr->boxArray(1);
    // The expanding shock forces the refined region to grow.
    EXPECT_GT(after.numPts(), before.numPts());
}

TEST(CastroAmr, TwoLevelsOfRefinement) {
    auto b = makeAmrBlast(2);
    EXPECT_EQ(b.amr->finestLevel(), 2);
    // Proper nesting across all levels.
    for (int lev = 1; lev <= 2; ++lev) {
        BoxArray crse = b.amr->boxArray(lev);
        crse.coarsen(2);
        for (const Box& bx : crse.boxes()) {
            EXPECT_TRUE(b.amr->boxArray(lev - 1).contains(bx));
        }
    }
    // One step runs through the full hierarchy without error.
    b.amr->step(b.amr->estimateDt());
    EXPECT_EQ(b.amr->stepCount(), 1);
}

TEST(CastroAmr, FillPatchProvidesGhostsFromCoarse) {
    auto b = makeAmrBlast(1);
    MultiFab& fine = b.amr->state(1);
    MultiFab dst(fine.boxArray(), fine.distributionMap(), fine.nComp(),
                 fine.nGrow());
    dst.setVal(-1.0e30);
    b.amr->fillPatch(1, dst);
    // All ghost zones within the level-1 physical domain must be filled.
    const Box dom1 = b.amr->geom(1).domain();
    for (std::size_t f = 0; f < dst.size(); ++f) {
        auto a = dst.const_array(static_cast<int>(f));
        const Box gb = grow(dst.box(static_cast<int>(f)), dst.nGrow()) & dom1;
        for (int k = gb.smallEnd(2); k <= gb.bigEnd(2); ++k)
            for (int j = gb.smallEnd(1); j <= gb.bigEnd(1); ++j)
                for (int i = gb.smallEnd(0); i <= gb.bigEnd(0); ++i) {
                    ASSERT_GT(a(i, j, k, StateLayout::URHO), 0.0)
                        << i << ' ' << j << ' ' << k;
                }
    }
}
