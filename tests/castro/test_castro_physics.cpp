#include "castro/sedov.hpp"
#include "castro/wd_collision.hpp"

#include <gtest/gtest.h>

#include <cmath>

using namespace exa;
using namespace exa::castro;

TEST(Sedov, BlastWaveExpandsSelfSimilarly) {
    auto net = makeIgnitionSimple();
    SedovParams p;
    p.ncell = 32;
    p.max_grid_size = 16;
    auto c = p.build(net);

    // March to two times and check R ~ t^(2/5).
    auto advanceTo = [&](Real t) {
        while (c->time() < t) c->step(std::min(c->estimateDt(), t - c->time()));
    };
    advanceTo(0.02);
    const Real r1 = measureShockRadius(*c, p.rho0);
    advanceTo(0.06);
    const Real r2 = measureShockRadius(*c, p.rho0);
    ASSERT_GT(r1, 0.0);
    ASSERT_GT(r2, r1);
    const Real slope = std::log(r2 / r1) / std::log(0.06 / 0.02);
    EXPECT_NEAR(slope, 0.4, 0.12); // t^{2/5}, loose at 32^3

    // Absolute radius within ~20% of the similarity solution.
    EXPECT_NEAR(r2 / sedovShockRadius(0.06, p.E, p.rho0), 1.0, 0.25);
}

TEST(Sedov, EnergyIsConservedAndShockCompresses) {
    auto net = makeIgnitionSimple();
    SedovParams p;
    p.ncell = 32;
    auto c = p.build(net);
    const Real e0 = c->totalEnergy();
    while (c->time() < 0.05) c->step(std::min(c->estimateDt(), 0.05 - c->time()));
    // Outflow boundaries are far away at t = 0.05: energy conserved.
    EXPECT_NEAR(c->totalEnergy() / e0, 1.0, 1e-6);
    // Strong-shock compression approaches (gamma+1)/(gamma-1) = 6;
    // numerical smearing at 32^3 keeps it well above 2.
    EXPECT_GT(c->maxDensity(), 2.0);
}

TEST(WdProfile, HydrostaticStarHasExpectedScale) {
    auto net = makeAprox13();
    Eos eos{HelmLiteEos{}};
    std::vector<Real> X(net.nspec(), 0.0);
    X[net.speciesIndex("c12")] = 0.5;
    X[net.speciesIndex("o16")] = 0.5;
    auto prof = buildWdProfile(eos, net, 5.0e6, 1.0e7, X);
    // A rho_c = 5e6 C/O white dwarf: R ~ 8-10 thousand km ("nearly 10,000
    // kilometers ... the same order of magnitude as the radius of the
    // Earth"), M ~ 0.6-0.9 Msun.
    EXPECT_GT(prof.radius, 5.0e8);
    EXPECT_LT(prof.radius, 1.4e9);
    EXPECT_GT(prof.mass / constants::M_sun, 0.4);
    EXPECT_LT(prof.mass / constants::M_sun, 1.2);
    // Monotone decreasing density.
    for (std::size_t i = 1; i < prof.rho.size(); ++i) {
        EXPECT_LE(prof.rho[i], prof.rho[i - 1] * (1 + 1e-12));
    }
    EXPECT_DOUBLE_EQ(prof.rhoAt(0.0), 5.0e6);
    EXPECT_EQ(prof.rhoAt(2.0 * prof.radius), 0.0);
}

TEST(WdProfile, MoreMassiveForHigherCentralDensity) {
    auto net = makeAprox13();
    Eos eos{HelmLiteEos{}};
    std::vector<Real> X(net.nspec(), 0.0);
    X[net.speciesIndex("c12")] = 0.5;
    X[net.speciesIndex("o16")] = 0.5;
    auto lo = buildWdProfile(eos, net, 2.0e6, 1.0e7, X);
    auto hi = buildWdProfile(eos, net, 2.0e7, 1.0e7, X);
    EXPECT_GT(hi.mass, lo.mass);
    EXPECT_LT(hi.radius, lo.radius); // degenerate stars shrink with mass
}

TEST(WdCollision, StarsApproachAndHeatAtContact) {
    // Very coarse (16^3) smoke run of the Section V setup: the stars move
    // toward each other under their initial velocity + gravity; by a
    // free-fall-scale time the density at center rises and the contact
    // region heats well above the initial temperature.
    auto net = makeIgnitionSimple(); // cheap network for the smoke test
    WdCollisionParams p;
    p.ncell = 16;
    p.max_grid_size = 8;
    p.do_react = false; // pure hydro+gravity approach phase
    p.domain_width = 1.0e10;
    p.separation_in_diameters = 1.2;
    p.approach_velocity = 3.0e8;
    auto wd = p.build(net);

    const Real rho_center0 = [&] {
        // density at domain center at t=0 ~ ambient (stars offset)
        return wd.castro->state().max(StateLayout::URHO);
    }();
    (void)rho_center0;
    const Real T0 = wd.castro->maxTemperature();

    // Time for the stars to close: gap between surfaces / (2 v).
    const Real gap = p.separation_in_diameters * 2.0 * wd.profile.radius -
                     2.0 * wd.profile.radius;
    const Real t_contact = gap / (2.0 * p.approach_velocity);
    int steps = 0;
    while (wd.castro->time() < 1.5 * t_contact && steps < 400) {
        wd.castro->step(wd.castro->estimateDt());
        ++steps;
    }
    EXPECT_GT(wd.castro->maxTemperature(), 3.0 * T0);
    // The hottest zone is near the collision plane x ~ 0.
    auto hz = wd.castro->hottestZone();
    EXPECT_LT(std::abs(hz[0]), 0.3 * p.domain_width);
}

TEST(WdCollision, TimescaleRatioDiagnosticBehaves) {
    auto net = makeIgnitionSimple();
    WdCollisionParams p;
    p.ncell = 8;
    p.max_grid_size = 8;
    p.do_react = false;
    auto wd = p.build(net);
    // No zone is hot yet: the diagnostic must report "no constraint".
    EXPECT_GT(wd.castro->minBurnTimescaleRatio(1.0e9), 1.0e50);
}

TEST(Gravity, MonopoleUniformSphereField) {
    // g(r) inside a uniform sphere is linear in r; outside ~ 1/r^2.
    auto net = makeIgnitionSimple();
    Box dom({0, 0, 0}, {31, 31, 31});
    Geometry geom(dom, {-1.0e9, -1.0e9, -1.0e9}, {1.0e9, 1.0e9, 1.0e9});
    BoxArray ba(dom);
    ba.maxSize(16);
    DistributionMapping dm(ba, 2);
    CastroOptions opt;
    opt.gravity = GravityType::Monopole;
    Eos eos{GammaLawEos{5.0 / 3.0}};
    Castro c(geom, ba, dm, net, eos, opt);
    const Real R = 4.0e8, rho_in = 1.0e6;
    c.initialize([&](Real x, Real y, Real z) {
        Castro::InitialZone zn;
        const Real r = std::sqrt(x * x + y * y + z * z);
        zn.rho = r < R ? rho_in : 1.0;
        zn.T = 1.0e6;
        zn.X = {1.0, 0.0};
        return zn;
    });
    c.gravity().solve(c.state());
    const auto& g = c.gravity().accel();

    const Real M = 4.0 / 3.0 * constants::pi * R * R * R * rho_in;
    // Probe |g| at r ~ R/2 (interior) and r ~ 2R (exterior) along x.
    auto probe = [&](Real xprobe) {
        // nearest zone center
        int i = static_cast<int>((xprobe - geom.probLo(0)) / geom.cellSize(0));
        Real val = 0.0;
        for (std::size_t b = 0; b < g.size(); ++b) {
            const Box& vb = g.box(static_cast<int>(b));
            if (vb.contains(i, 16, 16)) {
                val = g.const_array(static_cast<int>(b))(i, 16, 16, 0);
            }
        }
        return std::abs(val);
    };
    const Real g_half = probe(0.5 * R);
    const Real g_out = probe(2.0 * R);
    const Real g_surface_expect = constants::G_newton * M / (R * R);
    EXPECT_NEAR(g_half / (0.5 * g_surface_expect), 1.0, 0.2);
    EXPECT_NEAR(g_out / (0.25 * g_surface_expect), 1.0, 0.2);
}

TEST(Gravity, PoissonMatchesMonopoleForSphere) {
    auto net = makeIgnitionSimple();
    Box dom({0, 0, 0}, {31, 31, 31});
    Geometry geom(dom, {-1.0e9, -1.0e9, -1.0e9}, {1.0e9, 1.0e9, 1.0e9});
    BoxArray ba(dom);
    ba.maxSize(16);
    DistributionMapping dm(ba, 2);
    Eos eos{GammaLawEos{5.0 / 3.0}};

    auto makeC = [&](GravityType gt) {
        CastroOptions opt;
        opt.gravity = gt;
        auto c = std::make_unique<Castro>(geom, ba, dm, net, eos, opt);
        c->initialize([&](Real x, Real y, Real z) {
            Castro::InitialZone zn;
            const Real r = std::sqrt(x * x + y * y + z * z);
            zn.rho = r < 3.0e8 ? 1.0e6 : 1.0;
            zn.T = 1.0e6;
            zn.X = {1.0, 0.0};
            return zn;
        });
        c->gravity().solve(c->state());
        return c;
    };
    auto cm = makeC(GravityType::Monopole);
    auto cp = makeC(GravityType::Poisson);
    // Compare the x-acceleration on the x axis at ~1.5 radii; the
    // Dirichlet-0 box boundary costs the Poisson solve some accuracy, so
    // compare loosely.
    auto probe = [&](const Gravity& g) {
        const int i = 24, j = 16, k = 16; // x ~ +5.3e8
        for (std::size_t b = 0; b < g.accel().size(); ++b) {
            const Box& vb = g.accel().box(static_cast<int>(b));
            if (vb.contains(i, j, k)) {
                return g.accel().const_array(static_cast<int>(b))(i, j, k, 0);
            }
        }
        return Real(0);
    };
    const Real gm = probe(cm->gravity());
    const Real gp = probe(cp->gravity());
    EXPECT_LT(gm, 0.0);
    EXPECT_LT(gp, 0.0);
    EXPECT_NEAR(gp / gm, 1.0, 0.25);
}
