#include "castro/sedov.hpp"
#include "castro/validate.hpp"
#include "core/executor.hpp"
#include "core/fault.hpp"
#include "mesh/step_guard.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>
#include <new>
#include <utility>
#include <vector>

using namespace exa;
using namespace exa::castro;

namespace {

MultiFab makeMf(int n, int nc, int ng) {
    BoxArray ba(Box({0, 0, 0}, {n - 1, n - 1, n - 1}));
    ba.maxSize(std::max(n / 2, 4));
    DistributionMapping dm(ba, 1);
    MultiFab mf(ba, dm, nc, ng);
    mf.setVal(1.0);
    return mf;
}

StepGuardOptions quietGuard() {
    StepGuardOptions g;
    g.enabled = true;
    g.verbose = false;
    return g;
}

// A hot, dense, motionless carbon box: every zone is burn-eligible, so the
// burn-zone fault site gets hit on the very first zone of the first
// half-burn.
struct ReactingBox {
    ReactionNetwork net = makeIgnitionSimple();
    Eos eos{HelmLiteEos{}};
    std::unique_ptr<Castro> c;

    explicit ReactingBox(const StepGuardOptions& guard) {
        Box dom({0, 0, 0}, {7, 7, 7});
        Geometry geom(dom, {0, 0, 0}, {1.0e7, 1.0e7, 1.0e7});
        BoxArray ba(dom);
        ba.maxSize(8);
        DistributionMapping dm(ba, 1);
        CastroOptions opt;
        opt.do_react = true;
        opt.guard = guard;
        c = std::make_unique<Castro>(geom, ba, dm, net, eos, opt);
        c->initialize([](Real, Real, Real) {
            Castro::InitialZone z;
            z.rho = 2.6e9;
            z.T = 6.0e8;
            z.X = {1.0, 0.0};
            return z;
        });
    }
};

} // namespace

// ---------------------------------------------------------------- engine

TEST(StepGuard, CleanStepTakesOneAttempt) {
    StepGuard g(quietGuard());
    MultiFab mf = makeMf(8, 2, 1);
    int advances = 0;
    const auto out = g.advance(
        1.0, [&](StateSnapshot& s) { s.capture(mf); },
        [&](const StateSnapshot& s) { s.restoreTo(0, mf); },
        [&](Real, int) { ++advances; }, [] { return ValidationReport{}; },
        [](const StateSnapshot&, bool) { FAIL() << "degrade on a clean step"; });
    EXPECT_EQ(out, StepGuard::Outcome::Clean);
    EXPECT_EQ(advances, 1);
    EXPECT_EQ(g.stats().steps_guarded, 1);
    EXPECT_EQ(g.stats().retries, 0);
    EXPECT_EQ(g.stats().last_attempts, 1);
    EXPECT_EQ(g.stats().last_subcycles, 1);
    EXPECT_GT(g.stats().snapshot_bytes, 0);
}

TEST(StepGuard, RetryBacksOffGeometricallyAndRestores) {
    StepGuard g(quietGuard());
    MultiFab mf = makeMf(8, 1, 0);
    int attempts = 0;
    std::vector<std::pair<Real, int>> calls;
    const auto out = g.advance(
        1.0, [&](StateSnapshot& s) { s.capture(mf); },
        [&](const StateSnapshot& s) { s.restoreTo(0, mf); },
        [&](Real sub_dt, int nsub) {
            calls.push_back({sub_dt, nsub});
            mf.plus(1.0, 0, 1); // visible mutation: must be rolled back
            ++attempts;
        },
        [&] {
            ValidationReport r;
            if (attempts < 3) r.add("synthetic", "forced failure");
            return r;
        },
        [](const StateSnapshot&, bool) { FAIL() << "degrade despite success"; });
    EXPECT_EQ(out, StepGuard::Outcome::Retried);
    // Attempts ran as 1, 2, 4 substeps of dt, dt/2, dt/4.
    ASSERT_EQ(calls.size(), 3u);
    EXPECT_DOUBLE_EQ(calls[0].first, 1.0);
    EXPECT_EQ(calls[0].second, 1);
    EXPECT_DOUBLE_EQ(calls[1].first, 0.5);
    EXPECT_EQ(calls[1].second, 2);
    EXPECT_DOUBLE_EQ(calls[2].first, 0.25);
    EXPECT_EQ(calls[2].second, 4);
    EXPECT_EQ(g.stats().retries, 2);
    EXPECT_EQ(g.stats().last_attempts, 3);
    EXPECT_EQ(g.stats().last_subcycles, 4);
    // Each retry restored the snapshot first: exactly one surviving +1.
    EXPECT_DOUBLE_EQ(mf.const_array(0)(0, 0, 0, 0), 2.0);
}

TEST(StepGuard, AdvanceExceptionIsAFailedAttemptNotACrash) {
    StepGuard g(quietGuard());
    MultiFab mf = makeMf(8, 1, 0);
    int attempts = 0;
    const auto out = g.advance(
        1.0, [&](StateSnapshot& s) { s.capture(mf); },
        [&](const StateSnapshot& s) { s.restoreTo(0, mf); },
        [&](Real, int) {
            if (++attempts == 1) throw std::bad_alloc{};
        },
        [] { return ValidationReport{}; },
        [](const StateSnapshot&, bool) { FAIL(); });
    EXPECT_EQ(out, StepGuard::Outcome::Retried);
    EXPECT_EQ(attempts, 2);
    EXPECT_NE(g.stats().last_failure.find("advance threw"), std::string::npos);
}

TEST(StepGuard, ExhaustionUnderHardErrorThrows) {
    StepGuardOptions opt = quietGuard();
    opt.max_retries = 2;
    StepGuard g(opt);
    MultiFab mf = makeMf(8, 1, 0);
    EXPECT_THROW(
        g.advance(
            1.0, [&](StateSnapshot& s) { s.capture(mf); },
            [&](const StateSnapshot& s) { s.restoreTo(0, mf); }, [](Real, int) {},
            [] {
                ValidationReport r;
                r.add("synthetic", "always fails");
                return r;
            },
            [](const StateSnapshot&, bool) { FAIL() << "no degrade under HardError"; }),
        StepRetryError);
    EXPECT_EQ(g.stats().degraded, 1);
    EXPECT_EQ(g.stats().retries, 2);
}

TEST(StepGuard, ExhaustionUnderClampAndWarnDegrades) {
    StepGuardOptions opt = quietGuard();
    opt.max_retries = 1;
    opt.policy = RetryPolicy::ClampAndWarn;
    StepGuard g(opt);
    MultiFab mf = makeMf(8, 1, 0);
    bool degraded = false;
    const auto out = g.advance(
        1.0, [&](StateSnapshot& s) { s.capture(mf); },
        [&](const StateSnapshot& s) { s.restoreTo(0, mf); }, [](Real, int) {},
        [] {
            ValidationReport r;
            r.add("synthetic", "always fails");
            return r;
        },
        [&](const StateSnapshot& snap, bool threw) {
            degraded = true;
            EXPECT_FALSE(threw);
            EXPECT_EQ(snap.count(), 1u);
        });
    EXPECT_EQ(out, StepGuard::Outcome::Degraded);
    EXPECT_TRUE(degraded);
    EXPECT_EQ(g.stats().degraded, 1);
}

TEST(StepGuard, SnapshotRoundTripsValidAndGhostZones) {
    MultiFab mf = makeMf(8, 2, 2);
    mf.setVal(3.5); // including ghosts
    StateSnapshot snap;
    snap.capture(mf);
    mf.setVal(-1.0);
    snap.restoreTo(0, mf);
    const Box gbox = grow(mf.box(0), 2);
    auto a = mf.const_array(0);
    EXPECT_DOUBLE_EQ(a(gbox.smallEnd(0), gbox.smallEnd(1), gbox.smallEnd(2), 1), 3.5);
    EXPECT_DOUBLE_EQ(a(0, 0, 0, 0), 3.5);
}

TEST(StepGuard, RestoreRejectsChangedLayout) {
    MultiFab mf = makeMf(8, 1, 0);
    StateSnapshot snap;
    snap.capture(mf);
    MultiFab other = makeMf(16, 1, 0); // a "regrid" happened
    EXPECT_THROW(snap.restoreTo(0, other), StepRetryError);
}

// ------------------------------------------------------------- validator

TEST(CastroValidate, FlagsEachFailureMode) {
    const int nspec = 2;
    StateLayout layout(nspec);
    MultiFab mf = makeMf(8, layout.ncomp(), 0);
    mf.setVal(0.0);
    for (std::size_t f = 0; f < mf.size(); ++f) {
        auto a = mf.array(static_cast<int>(f));
        const Box& vb = mf.box(static_cast<int>(f));
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                    a(i, j, k, StateLayout::URHO) = 1.0;
                    a(i, j, k, StateLayout::UEDEN) = 1.0;
                    a(i, j, k, StateLayout::UFS) = 0.4;
                    a(i, j, k, StateLayout::UFS + 1) = 0.6;
                }
    }
    StepGuardOptions opt = quietGuard();
    EXPECT_TRUE(validateState(mf, nspec, opt).ok());

    {
        auto a = mf.array(0);
        a(1, 2, 3, StateLayout::UEDEN) = std::nan("");
        auto rep = validateState(mf, nspec, opt);
        ASSERT_FALSE(rep.ok());
        EXPECT_EQ(rep.issues[0].check, "non-finite");
        EXPECT_NE(rep.issues[0].detail.find("(1,2,3)"), std::string::npos);
        a(1, 2, 3, StateLayout::UEDEN) = 1.0;
    }
    {
        auto a = mf.array(0);
        a(0, 0, 0, StateLayout::URHO) = -2.0;
        auto rep = validateState(mf, nspec, opt);
        ASSERT_FALSE(rep.ok());
        EXPECT_EQ(rep.issues[0].check, "negative-density");
        a(0, 0, 0, StateLayout::URHO) = 1.0;
    }
    {
        auto a = mf.array(0);
        a(2, 2, 2, StateLayout::UFS) = 0.9; // sum X = 1.5
        auto rep = validateState(mf, nspec, opt);
        ASSERT_FALSE(rep.ok());
        EXPECT_EQ(rep.issues[0].check, "species-sum-drift");
        a(2, 2, 2, StateLayout::UFS) = 0.4;
    }
    {
        BurnGridStats burn;
        burn.zones = 100;
        burn.failures = 3;
        burn.first_failure = {true, 4, 5, 6, 0, -1, 2.6e9, 7.0e8};
        auto rep = validateState(mf, nspec, opt, &burn);
        ASSERT_FALSE(rep.ok());
        EXPECT_EQ(rep.issues[0].check, "burn-failures");
        EXPECT_NE(rep.issues[0].detail.find("(4,5,6)"), std::string::npos);
        // A tolerant threshold accepts the same stats.
        StepGuardOptions loose = opt;
        loose.burn_failure_tol = 0.05;
        EXPECT_TRUE(validateState(mf, nspec, loose, &burn).ok());
    }
}

// ------------------------------------------------- driver integration

TEST(StepGuardCastro, InjectedBurnFailureRetriesAndConverges) {
    fault::disarmAll();
    StepGuardOptions guard = quietGuard();
    ReactingBox box(guard);
    const Real dt = 1.0e-6;

    fault::Spec once; // default: first hit only
    fault::ScopedFault f(fault::Site::BurnZoneFailure, once);
    const BurnGridStats burn = box.c->step(dt);

    // The failure fired, forced a rollback, and the re-advance burned
    // every zone cleanly.
    EXPECT_EQ(fault::stats(fault::Site::BurnZoneFailure).fires, 1);
    EXPECT_GE(box.c->retryStats().retries, 1);
    EXPECT_EQ(burn.failures, 0);
    EXPECT_DOUBLE_EQ(box.c->time(), dt);
    EXPECT_EQ(box.c->stepCount(), 1); // one guarded step = one step
    EXPECT_TRUE(validateState(box.c->state(), 2, guard).ok());
}

TEST(StepGuardCastro, ExhaustedRetriesHardErrorThrows) {
    fault::disarmAll();
    StepGuardOptions guard = quietGuard();
    guard.max_retries = 2;
    ReactingBox box(guard);

    fault::Spec forever;
    forever.count = 0; // every burn of every attempt fails
    fault::ScopedFault f(fault::Site::BurnZoneFailure, forever);
    EXPECT_THROW(box.c->step(1.0e-6), StepRetryError);
    EXPECT_EQ(box.c->retryStats().degraded, 1);
    EXPECT_EQ(box.c->retryStats().retries, 2);
}

TEST(StepGuardCastro, ExhaustedRetriesClampAndWarnContinues) {
    fault::disarmAll();
    StepGuardOptions guard = quietGuard();
    guard.max_retries = 1;
    guard.policy = RetryPolicy::ClampAndWarn;
    ReactingBox box(guard);

    fault::Spec forever;
    forever.count = 0;
    fault::ScopedFault f(fault::Site::BurnZoneFailure, forever);
    EXPECT_NO_THROW(box.c->step(1.0e-6));
    EXPECT_EQ(box.c->retryStats().degraded, 1);
    EXPECT_EQ(box.c->stepCount(), 1);
    // The degraded state is still physically admissible.
    StepGuardOptions check = quietGuard();
    check.burn_failure_tol = 1.0; // burn failures tolerated, state must be sane
    EXPECT_TRUE(validateState(box.c->state(), 2, check).ok());
}

TEST(StepGuardCastro, InjectedNanFluxIsCaughtAcrossBackends) {
    for (Backend be : {Backend::Serial, Backend::OpenMP, Backend::SimGpu}) {
        SCOPED_TRACE(static_cast<int>(be));
        ScopedBackend sb(be);
        fault::disarmAll();
        auto net = makeIgnitionSimple();
        SedovParams p;
        p.ncell = 16;
        p.max_grid_size = 8;
        p.guard = quietGuard();
        auto c = p.build(net);
        c->step(c->estimateDt());
        {
            fault::ScopedFault f(fault::Site::HydroNanFlux); // fires once
            c->step(c->estimateDt());
        }
        EXPECT_GE(c->retryStats().retries, 1);
        EXPECT_TRUE(validateState(c->state(), net.nspec(), p.guard).ok());
    }
}

TEST(StepGuardCastro, InjectedHaloCorruptionIsCaughtAndRetried) {
    fault::disarmAll();
    auto net = makeIgnitionSimple();
    SedovParams p;
    p.ncell = 16;
    p.max_grid_size = 8; // several fabs -> FillBoundary moves real payloads
    p.guard = quietGuard();
    auto c = p.build(net);
    c->step(c->estimateDt());
    {
        fault::ScopedFault f(fault::Site::HaloPayloadCorrupt);
        c->step(c->estimateDt());
    }
    EXPECT_EQ(fault::stats(fault::Site::HaloPayloadCorrupt).fires, 1);
    EXPECT_GE(c->retryStats().retries, 1);
    EXPECT_TRUE(validateState(c->state(), net.nspec(), p.guard).ok());
}

TEST(StepGuardCastro, InjectedAllocationFailureIsRecoverable) {
    fault::disarmAll();
    auto net = makeIgnitionSimple();
    SedovParams p;
    p.ncell = 8;
    p.max_grid_size = 8; // one fab: the snapshot is exactly one allocation
    p.guard = quietGuard();
    auto c = p.build(net);
    const Real dt = c->estimateDt();
    {
        // Skip the snapshot clone (alloc 0) and the two step temporaries,
        // then kill one allocation inside the hydro advance itself.
        fault::Spec spec;
        spec.start = 3;
        fault::ScopedFault f(fault::Site::ArenaAllocFailure, spec);
        c->step(dt);
    }
    EXPECT_GE(c->retryStats().retries, 1);
    EXPECT_NE(c->retryStats().last_failure.find("advance threw"),
              std::string::npos);
    EXPECT_TRUE(validateState(c->state(), net.nspec(), p.guard).ok());
}

// End-to-end faulted-run scenarios (conservation under mid-run faults,
// checkpoint corruption on restart) live in tests/fault/, under the
// `fault-injection` ctest label.
