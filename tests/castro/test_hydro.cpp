#include "castro/hydro.hpp"
#include "castro/castro.hpp"

#include <gtest/gtest.h>

#include <cmath>

using namespace exa;
using namespace exa::castro;

namespace {

// A gamma-law Castro on a periodic unit cube.
std::unique_ptr<Castro> makePeriodic(const ReactionNetwork& net, int n, Real gamma,
                                     const Castro::InitFn& init) {
    Box dom({0, 0, 0}, {n - 1, n - 1, n - 1});
    Geometry geom(dom, {0, 0, 0}, {1, 1, 1}, IntVect{1, 1, 1});
    BoxArray ba(dom);
    ba.maxSize(std::max(8, n / 2));
    DistributionMapping dm(ba, 2);
    CastroOptions opt;
    opt.bc = DomainBC::allPeriodic();
    Eos eos{GammaLawEos{gamma}};
    auto c = std::make_unique<Castro>(geom, ba, dm, net, eos, opt);
    c->initialize(init);
    return c;
}

} // namespace

TEST(HllcFlux, ExactForUniformFlow) {
    // A uniform state moving at u: flux must be the exact advective flux.
    const int nspec = 2;
    PrimLayout Q(nspec);
    std::vector<Real> q(Q.ncomp());
    q[PrimLayout::QRHO] = 2.0;
    q[PrimLayout::QU] = 0.7;
    q[PrimLayout::QV] = -0.2;
    q[PrimLayout::QW] = 0.1;
    q[PrimLayout::QP] = 1.5;
    q[PrimLayout::QREINT] = 1.5 / 0.4; // gamma = 1.4
    q[PrimLayout::QC] = std::sqrt(1.4 * 1.5 / 2.0);
    q[PrimLayout::QFS] = 0.25;
    q[PrimLayout::QFS + 1] = 0.75;

    StateLayout S(nspec);
    std::vector<Real> flux(S.ncomp());
    hllcFlux(q.data(), q.data(), nspec, 0, flux.data());

    const Real rho = 2.0, u = 0.7, v = -0.2, w = 0.1, p = 1.5;
    const Real E = 1.5 / 0.4 + 0.5 * rho * (u * u + v * v + w * w);
    EXPECT_NEAR(flux[StateLayout::URHO], rho * u, 1e-12);
    EXPECT_NEAR(flux[StateLayout::UMX], rho * u * u + p, 1e-12);
    EXPECT_NEAR(flux[StateLayout::UMY], rho * u * v, 1e-12);
    EXPECT_NEAR(flux[StateLayout::UMZ], rho * u * w, 1e-12);
    EXPECT_NEAR(flux[StateLayout::UEDEN], u * (E + p), 1e-12);
    EXPECT_NEAR(flux[StateLayout::UFS], rho * u * 0.25, 1e-12);
    EXPECT_NEAR(flux[StateLayout::UFS + 1], rho * u * 0.75, 1e-12);
}

TEST(HllcFlux, SymmetricStatesGiveZeroMassFlux) {
    // Mirror states (equal rho/p, opposite velocity): the interface is a
    // stagnation point; mass flux vanishes by symmetry.
    const int nspec = 1;
    PrimLayout Q(nspec);
    std::vector<Real> ql(Q.ncomp()), qr(Q.ncomp());
    for (auto* q : {&ql, &qr}) {
        (*q)[PrimLayout::QRHO] = 1.0;
        (*q)[PrimLayout::QP] = 1.0;
        (*q)[PrimLayout::QREINT] = 2.5;
        (*q)[PrimLayout::QC] = std::sqrt(1.4);
        (*q)[PrimLayout::QFS] = 1.0;
        (*q)[PrimLayout::QV] = 0.0;
        (*q)[PrimLayout::QW] = 0.0;
    }
    ql[PrimLayout::QU] = 0.3;
    qr[PrimLayout::QU] = -0.3;
    StateLayout S(nspec);
    std::vector<Real> flux(S.ncomp());
    hllcFlux(ql.data(), qr.data(), nspec, 0, flux.data());
    EXPECT_NEAR(flux[StateLayout::URHO], 0.0, 1e-12);
    EXPECT_NEAR(flux[StateLayout::UEDEN], 0.0, 1e-12);
    EXPECT_GT(flux[StateLayout::UMX], 1.0); // compression: p* > p
}

TEST(McSlope, LimitsAtExtrema) {
    Box b({0, 0, 0}, {4, 0, 0});
    std::vector<Real> data = {1.0, 2.0, 5.0, 2.0, 1.0};
    Array4<const Real> q(data.data(), b, 1);
    EXPECT_DOUBLE_EQ(mcSlope(q, 2, 0, 0, 0, 0), 0.0); // local max
    EXPECT_GT(mcSlope(q, 1, 0, 0, 0, 0), 0.0);        // monotone rise
}

TEST(CastroHydro, UniformStateIsSteady) {
    auto net = makeIgnitionSimple();
    auto c = makePeriodic(net, 8, 1.4, [&](Real, Real, Real) {
        Castro::InitialZone z;
        z.rho = 1.0;
        z.T = 300.0;
        z.X = {1.0, 0.0};
        z.vel = {0.1, -0.2, 0.05};
        return z;
    });
    const Real m0 = c->totalMass();
    const Real e0 = c->totalEnergy();
    for (int s = 0; s < 5; ++s) c->step(c->estimateDt());
    // A uniform moving state must stay exactly uniform (to round-off).
    EXPECT_NEAR(c->totalMass(), m0, 1e-12 * m0);
    EXPECT_NEAR(c->totalEnergy(), e0, 1e-10 * std::abs(e0));
    EXPECT_NEAR(c->state().min(StateLayout::URHO), 1.0, 1e-10);
    EXPECT_NEAR(c->state().max(StateLayout::URHO), 1.0, 1e-10);
}

TEST(CastroHydro, ConservesOnPeriodicDomain) {
    // A smooth density/velocity perturbation: mass, momentum, and energy
    // are conserved to round-off on a periodic domain.
    auto net = makeIgnitionSimple();
    auto c = makePeriodic(net, 16, 1.4, [&](Real x, Real y, Real z) {
        Castro::InitialZone zn;
        zn.rho = 1.0 + 0.2 * std::sin(2 * constants::pi * x) *
                           std::cos(2 * constants::pi * y);
        zn.T = 300.0 * (1.0 + 0.1 * std::sin(2 * constants::pi * z));
        zn.vel = {0.3 * std::sin(2 * constants::pi * y), 0.0,
                  -0.2 * std::cos(2 * constants::pi * x)};
        zn.X = {0.7, 0.3};
        return zn;
    });
    const Real m0 = c->totalMass();
    const auto p0 = c->totalMomentum();
    const Real e0 = c->totalEnergy();
    for (int s = 0; s < 10; ++s) c->step(c->estimateDt());
    EXPECT_NEAR(c->totalMass() / m0, 1.0, 1e-12);
    const auto p1 = c->totalMomentum();
    const Real pscale = std::abs(p0[0]) + std::abs(p0[2]) + m0;
    EXPECT_NEAR((p1[0] - p0[0]) / pscale, 0.0, 1e-11);
    EXPECT_NEAR((p1[1] - p0[1]) / pscale, 0.0, 1e-11);
    EXPECT_NEAR((p1[2] - p0[2]) / pscale, 0.0, 1e-11);
    EXPECT_NEAR(c->totalEnergy() / e0, 1.0, 1e-11);
}

TEST(CastroHydro, SodShockTubeStructure) {
    // Classic Sod problem along x: after a short time the solution has a
    // rightward shock, contact, and leftward rarefaction. Check invariant
    // ordering and plateau values loosely (PLM + HLLC at modest N).
    auto net = makeIgnitionSimple();
    Box dom({0, 0, 0}, {63, 3, 3});
    Geometry geom(dom, {0, 0, 0}, {1.0, 0.0625, 0.0625});
    BoxArray ba(dom);
    ba.maxSize(32);
    DistributionMapping dm(ba, 2);
    CastroOptions opt;
    opt.bc = DomainBC::allOutflow();
    opt.cfl = 0.4;
    Eos eos{GammaLawEos{1.4}};
    Castro c(geom, ba, dm, net, eos, opt);
    c.initialize([&](Real x, Real, Real) {
        Castro::InitialZone z;
        z.rho = x < 0.5 ? 1.0 : 0.125;
        z.p = x < 0.5 ? 1.0 : 0.1;
        z.X = {1.0, 0.0};
        return z;
    });
    while (c.time() < 0.15) c.step(std::min(c.estimateDt(), 0.15 - c.time()));

    auto u = c.state().const_array(0);
    (void)u;
    // Sample the density along the centerline.
    std::vector<Real> rho_line(64);
    for (std::size_t b = 0; b < c.state().size(); ++b) {
        auto a = c.state().const_array(static_cast<int>(b));
        const Box& vb = c.state().box(static_cast<int>(b));
        if (vb.smallEnd(1) > 1 || vb.bigEnd(1) < 1) continue;
        if (vb.smallEnd(2) > 1 || vb.bigEnd(2) < 1) continue;
        for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
            rho_line[i] = a(i, 1, 1, StateLayout::URHO);
        }
    }
    // Left state undisturbed, right state undisturbed.
    EXPECT_NEAR(rho_line[2], 1.0, 1e-6);
    EXPECT_NEAR(rho_line[61], 0.125, 1e-6);
    // Post-shock plateau (exact: 0.2656) lies between the contact
    // (x ~ 0.64 at t = 0.15) and the shock (x ~ 0.76): sample x ~ 0.71.
    EXPECT_NEAR(rho_line[45], 0.2656, 0.05);
    // Contact plateau (exact: 0.4263).
    bool found_contact = false;
    for (int i = 32; i < 56; ++i) {
        if (std::abs(rho_line[i] - 0.4263) < 0.05) found_contact = true;
    }
    EXPECT_TRUE(found_contact);
}

TEST(CastroHydro, EstimateDtScalesWithResolution) {
    auto net = makeIgnitionSimple();
    auto mk = [&](int n) {
        return makePeriodic(net, n, 1.4, [&](Real, Real, Real) {
            Castro::InitialZone z;
            z.rho = 1.0;
            z.T = 300.0;
            z.X = {1.0, 0.0};
            return z;
        });
    };
    auto c8 = mk(8);
    auto c16 = mk(16);
    EXPECT_NEAR(c8->estimateDt() / c16->estimateDt(), 2.0, 1e-6);
}

TEST(CastroHydro, BackendsProduceIdenticalStates) {
    auto net = makeIgnitionSimple();
    auto run = [&](Backend be) {
        ScopedBackend sb(be);
        auto c = makePeriodic(net, 8, 1.4, [&](Real x, Real, Real) {
            Castro::InitialZone z;
            z.rho = 1.0 + 0.3 * std::sin(2 * constants::pi * x);
            z.T = 300.0;
            z.X = {1.0, 0.0};
            return z;
        });
        for (int s = 0; s < 3; ++s) c->step(c->estimateDt());
        return c->state().sum(StateLayout::UEDEN);
    };
    const Real serial = run(Backend::Serial);
    const Real gpu = run(Backend::SimGpu);
    EXPECT_EQ(serial, gpu); // bit identical
}

TEST(PpmEdges, ReproducesSmoothParabolaAndLimitsExtrema) {
    Box b({0, 0, 0}, {8, 0, 0});
    std::vector<Real> data(9);
    // Smooth quadratic: edges should be 4th-order accurate (near exact).
    for (int i = 0; i < 9; ++i) data[i] = 2.0 + 0.5 * i + 0.25 * i * i;
    Array4<const Real> q(data.data(), b, 1);
    Real qm, qp;
    ppmEdges(q, 4, 0, 0, 0, 0, qm, qp);
    // Analytic cell-average of the quadratic gives interface values
    // f(3.5) + O(h^4) correction; just require tight agreement.
    EXPECT_NEAR(qm, 2.0 + 0.5 * 3.5 + 0.25 * (3.5 * 3.5 + 1.0 / 12.0), 0.05);
    EXPECT_NEAR(qp, 2.0 + 0.5 * 4.5 + 0.25 * (4.5 * 4.5 + 1.0 / 12.0), 0.05);

    // A local extremum must flatten to first order (monotonization).
    std::vector<Real> peak = {0, 0, 0, 1, 5, 1, 0, 0, 0};
    Array4<const Real> qpk(peak.data(), b, 1);
    ppmEdges(qpk, 4, 0, 0, 0, 0, qm, qp);
    EXPECT_DOUBLE_EQ(qm, 5.0);
    EXPECT_DOUBLE_EQ(qp, 5.0);

    // Monotone data: edges bounded by the neighbors.
    std::vector<Real> mono = {0, 1, 2, 3, 4, 5, 6, 7, 8};
    Array4<const Real> qm2(mono.data(), b, 1);
    ppmEdges(qm2, 4, 0, 0, 0, 0, qm, qp);
    EXPECT_GE(qm, 3.0);
    EXPECT_LE(qp, 5.0);
    EXPECT_LT(qm, qp);
}

TEST(CastroHydro, PpmSharperThanPlmOnSod) {
    // Both schemes must conserve and converge; PPM should resolve the
    // contact at least as sharply (fewer zones across the jump).
    auto net = makeIgnitionSimple();
    auto run = [&](Reconstruction recon) {
        Box dom({0, 0, 0}, {63, 3, 3});
        Geometry geom(dom, {0, 0, 0}, {1.0, 0.0625, 0.0625});
        BoxArray ba(dom);
        ba.maxSize(32);
        DistributionMapping dm(ba, 2);
        CastroOptions opt;
        opt.bc = DomainBC::allOutflow();
        opt.cfl = 0.4;
        opt.reconstruction = recon;
        Eos eos{GammaLawEos{1.4}};
        Castro c(geom, ba, dm, net, eos, opt);
        c.initialize([&](Real x, Real, Real) {
            Castro::InitialZone z;
            z.rho = x < 0.5 ? 1.0 : 0.125;
            z.p = x < 0.5 ? 1.0 : 0.1;
            z.X = {1.0, 0.0};
            return z;
        });
        while (c.time() < 0.15) c.step(std::min(c.estimateDt(), 0.15 - c.time()));
        std::vector<Real> line(64);
        for (std::size_t b = 0; b < c.state().size(); ++b) {
            auto a = c.state().const_array(static_cast<int>(b));
            const Box& vb = c.state().box(static_cast<int>(b));
            if (vb.smallEnd(1) > 1 || vb.bigEnd(1) < 1) continue;
            if (vb.smallEnd(2) > 1 || vb.bigEnd(2) < 1) continue;
            for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                line[i] = a(i, 1, 1, StateLayout::URHO);
            }
        }
        return line;
    };
    auto plm = run(Reconstruction::PLM);
    auto ppm = run(Reconstruction::PPM);
    // Same plateaus.
    EXPECT_NEAR(plm[45], ppm[45], 0.03);
    // Contact width: zones with 0.30 < rho < 0.40 (between the plateaus).
    auto width = [](const std::vector<Real>& l) {
        int w = 0;
        for (Real v : l) w += (v > 0.30 && v < 0.40) ? 1 : 0;
        return w;
    };
    EXPECT_LE(width(ppm), width(plm));
}
