// The batched grid burn driver: reactState(batched=true) must be
// bit-identical to the per-zone path on every backend — state, stats,
// skipped zones, failure attribution, and the CostMonitor work channel —
// while routing the stiff tail and surviving fault injection with the
// same first-failure semantics. Plus the WD-collision driver defaults
// that turn the engine on.
#include "castro/react.hpp"

#include "castro/state.hpp"
#include "castro/wd_collision.hpp"
#include "core/executor.hpp"
#include "core/fault.hpp"
#include "mesh/multifab.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

using namespace exa;
using namespace exa::castro;

namespace {

// A small WD-collision-like stiffness distribution: a cold (skipped)
// slab, a warm quiescent bulk, a hot interface plane, and two igniting
// zones in different fabs.
struct Workload {
    BoxArray ba;
    DistributionMapping dm;
    MultiFab state;
    int nspec;

    explicit Workload(const ReactionNetwork& net, int ncell = 16, int max_grid = 8)
        : ba(makeBa(ncell, max_grid)), dm(ba, 1),
          state(ba, dm, StateLayout(net.nspec()).ncomp(), 0), nspec(net.nspec()) {
        std::vector<Real> X(nspec, 0.0);
        X[net.speciesIndex("c12")] = 0.5;
        X[net.speciesIndex("o16")] = 0.5;
        const int mid = ncell / 2;
        for (std::size_t f = 0; f < state.size(); ++f) {
            auto u = state.array(static_cast<int>(f));
            const Box& vb = state.box(static_cast<int>(f));
            for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
                for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                    for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                        const Real rho = 1.0e7;
                        Real T;
                        if (i < ncell / 4) {
                            T = 3.0e7; // below T_min: skipped
                        } else if (i == mid) {
                            const bool hot = (j == 4 && k == 4) ||
                                             (j == ncell - 4 && k == ncell - 4);
                            T = hot ? 2.5e9 : 6.0e8;
                        } else {
                            T = 1.5e8;
                        }
                        u(i, j, k, StateLayout::URHO) = rho;
                        u(i, j, k, StateLayout::UTEMP) = T;
                        for (int n = 0; n < nspec; ++n)
                            u(i, j, k, StateLayout::UFS + n) = rho * X[n];
                        u(i, j, k, StateLayout::UEDEN) = rho * 1.0e17;
                    }
        }
    }

    static BoxArray makeBa(int ncell, int max_grid) {
        BoxArray ba(Box({0, 0, 0}, {ncell - 1, ncell - 1, ncell - 1}));
        ba.maxSize(max_grid);
        return ba;
    }

    MultiFab copy() const {
        MultiFab out(ba, dm, state.nComp(), state.nGrow());
        MultiFab::Copy(out, state, 0, 0, state.nComp(), 0);
        return out;
    }
};

// Bitwise comparison over every fab and component of the valid regions.
void expectBitIdentical(const MultiFab& a, const MultiFab& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t f = 0; f < a.size(); ++f) {
        auto ua = a.const_array(static_cast<int>(f));
        auto ub = b.const_array(static_cast<int>(f));
        const Box& vb = a.box(static_cast<int>(f));
        for (int n = 0; n < a.nComp(); ++n)
            for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
                for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                    for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                        ASSERT_EQ(ua(i, j, k, n), ub(i, j, k, n))
                            << "fab " << f << " comp " << n << " zone (" << i
                            << "," << j << "," << k << ")";
                    }
    }
}

void expectStatsEqual(const BurnGridStats& a, const BurnGridStats& b) {
    EXPECT_EQ(a.zones, b.zones);
    EXPECT_EQ(a.total_steps, b.total_steps);
    EXPECT_EQ(a.max_steps, b.max_steps);
    EXPECT_EQ(a.failures, b.failures);
    EXPECT_EQ(a.first_failure.valid, b.first_failure.valid);
    if (a.first_failure.valid) {
        EXPECT_EQ(a.first_failure.i, b.first_failure.i);
        EXPECT_EQ(a.first_failure.j, b.first_failure.j);
        EXPECT_EQ(a.first_failure.k, b.first_failure.k);
        EXPECT_EQ(a.first_failure.fab, b.first_failure.fab);
        EXPECT_EQ(a.first_failure.level, b.first_failure.level);
    }
}

// The traversal-order-first reacting zone (fab, then k/j/i) — what the
// serial path hits first and what both paths must report as the first
// failure when every burn fails.
BurnFailureSite firstReactingZone(const MultiFab& state, const ReactOptions& opt) {
    for (std::size_t f = 0; f < state.size(); ++f) {
        auto u = state.const_array(static_cast<int>(f));
        const Box& vb = state.box(static_cast<int>(f));
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                    const Real rho = u(i, j, k, StateLayout::URHO);
                    const Real T = u(i, j, k, StateLayout::UTEMP);
                    if (T < opt.T_min || rho < opt.rho_min) continue;
                    return {true, i, j, k, static_cast<int>(f), -1, rho, T};
                }
    }
    return {};
}

const ReactionNetwork& testNet() {
    static auto net = makeNetworkByName("iso7");
    return net;
}

const Real kDt = 1.0e-7;

} // namespace

// --- Bit-identity across backends ---------------------------------------

class ReactBatchedBackends : public ::testing::TestWithParam<Backend> {};

TEST_P(ReactBatchedBackends, BatchedMatchesSerialBitwise) {
    ScopedBackend sb(GetParam());
    const auto& net = testNet();
    Eos eos{HelmLiteEos{}};
    Workload w(net);
    auto serial = w.copy();
    auto batched = w.copy();

    ReactOptions so;
    ReactOptions bo;
    bo.batched = true;
    auto ss = reactState(serial, net, eos, kDt, so);
    auto bs = reactState(batched, net, eos, kDt, bo);

    expectStatsEqual(ss, bs);
    expectBitIdentical(serial, batched);
    EXPECT_EQ(ss.failures, 0);
    EXPECT_GT(ss.total_steps, ss.zones); // something actually burned
}

TEST_P(ReactBatchedBackends, HybridTailMatchesSerialBitwise) {
    ScopedBackend sb(GetParam());
    const auto& net = testNet();
    Eos eos{HelmLiteEos{}};
    Workload w(net);
    auto serial = w.copy();
    auto hybrid = w.copy();

    ReactOptions ho;
    ho.batched = true;
    ho.batch.hybrid_cpu_tail = true;
    ho.batch.tail_factor = 4.0;
    ho.batch.tail_min_stiffness = 0.0;
    auto ss = reactState(serial, net, eos, kDt, ReactOptions{});
    auto hs = reactState(hybrid, net, eos, kDt, ho);

    expectStatsEqual(ss, hs);
    expectBitIdentical(serial, hybrid);

    const auto& rep = lastBatchBurnReport();
    EXPECT_EQ(rep.device_zones + rep.tail_zones, rep.gathered);
    EXPECT_GT(rep.tail_zones, 0) << "tail cut " << rep.stiffness_tail_cut
                                 << " median " << rep.stiffness_median;
    EXPECT_GT(rep.batches, 0);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ReactBatchedBackends,
                         ::testing::Values(Backend::Serial, Backend::OpenMP,
                                           Backend::SimGpu, Backend::Debug),
                         [](const auto& info) {
                             switch (info.param) {
                                 case Backend::Serial: return "Serial";
                                 case Backend::OpenMP: return "OpenMP";
                                 case Backend::SimGpu: return "SimGpu";
                                 default: return "Debug";
                             }
                         });

// --- Gather/scatter round trip ------------------------------------------

TEST(ReactBatched, ColdZonesAreUntouchedBitwise) {
    const auto& net = testNet();
    Eos eos{HelmLiteEos{}};
    Workload w(net);
    auto burned = w.copy();
    ReactOptions bo;
    bo.batched = true;
    auto bs = reactState(burned, net, eos, kDt, bo);

    // The gather covers exactly the reacting zones...
    const std::int64_t ncold = static_cast<std::int64_t>(16 / 4) * 16 * 16;
    EXPECT_EQ(lastBatchBurnReport().gathered, bs.zones - ncold);

    // ...and every skipped zone round-trips bitwise untouched.
    std::int64_t cold_seen = 0;
    for (std::size_t f = 0; f < burned.size(); ++f) {
        auto ub = burned.const_array(static_cast<int>(f));
        auto u0 = w.state.const_array(static_cast<int>(f));
        const Box& vb = burned.box(static_cast<int>(f));
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                    if (u0(i, j, k, StateLayout::UTEMP) >= 5.0e7) continue;
                    ++cold_seen;
                    for (int n = 0; n < burned.nComp(); ++n) {
                        ASSERT_EQ(ub(i, j, k, n), u0(i, j, k, n))
                            << "cold zone (" << i << "," << j << "," << k << ")";
                    }
                }
    }
    EXPECT_EQ(cold_seen, ncold);
}

// --- Fault injection through the batched path ---------------------------

TEST(ReactBatched, EveryZoneFailingNamesTraversalFirstZone) {
    // An unbounded fault window fails every burn in both paths. The
    // batched engine integrates in stiffness order, but first-failure
    // attribution is defined in traversal order — both paths must name
    // the same zone, and neither may write anything back.
    const auto& net = testNet();
    Eos eos{HelmLiteEos{}};
    Workload w(net);
    ReactOptions so;
    ReactOptions bo;
    bo.batched = true;

    fault::Spec forever;
    forever.start = 0;
    forever.count = 0; // unbounded
    const auto expected = firstReactingZone(w.state, so);
    ASSERT_TRUE(expected.valid);

    auto serial = w.copy();
    BurnGridStats ss;
    {
        fault::ScopedFault arm(fault::Site::BurnZoneFailure, forever);
        ss = reactState(serial, net, eos, kDt, so);
    }
    auto batched = w.copy();
    BurnGridStats bs;
    {
        fault::ScopedFault arm(fault::Site::BurnZoneFailure, forever);
        bs = reactState(batched, net, eos, kDt, bo);
    }

    for (const auto* st : {&ss, &bs}) {
        EXPECT_GT(st->failures, 0);
        ASSERT_TRUE(st->first_failure.valid);
        EXPECT_EQ(st->first_failure.i, expected.i);
        EXPECT_EQ(st->first_failure.j, expected.j);
        EXPECT_EQ(st->first_failure.k, expected.k);
        EXPECT_EQ(st->first_failure.fab, expected.fab);
        EXPECT_EQ(st->first_failure.level, -1);
        EXPECT_EQ(st->first_failure.rho, expected.rho);
        EXPECT_EQ(st->first_failure.T, expected.T);
    }
    expectStatsEqual(ss, bs);
    // Failed zones are not scattered: the whole state is untouched.
    expectBitIdentical(serial, w.state);
    expectBitIdentical(batched, w.state);
}

TEST(ReactBatched, SingleFaultFailsExactlyOneZoneAndLeavesItUntouched) {
    const auto& net = testNet();
    Eos eos{HelmLiteEos{}};
    Workload w(net);
    ReactOptions bo;
    bo.batched = true;

    auto burned = w.copy();
    BurnGridStats bs;
    {
        fault::ScopedFault arm(fault::Site::BurnZoneFailure, fault::Spec{});
        bs = reactState(burned, net, eos, kDt, bo);
    }
    EXPECT_EQ(bs.failures, 1);
    ASSERT_TRUE(bs.first_failure.valid);
    EXPECT_EQ(bs.first_failure.level, -1);
    ASSERT_GE(bs.first_failure.fab, 0);
    ASSERT_LT(bs.first_failure.fab, static_cast<int>(burned.size()));
    const auto& site = bs.first_failure;
    // The named zone is inside its fab's box, was eligible, and was left
    // exactly as gathered.
    const Box& vb = burned.box(site.fab);
    EXPECT_TRUE(vb.contains(site.i, site.j, site.k));
    auto ub = burned.const_array(site.fab);
    auto u0 = w.state.const_array(site.fab);
    EXPECT_GE(site.T, 5.0e7);
    for (int n = 0; n < burned.nComp(); ++n) {
        EXPECT_EQ(ub(site.i, site.j, site.k, n), u0(site.i, site.j, site.k, n));
    }
}

// --- Cost accounting -----------------------------------------------------

TEST(ReactBatched, WorkChannelMatchesSerialPerFab) {
    // The load balancer's work channel (integrator steps per fab) must be
    // the same whichever burn driver ran.
    const auto& net = testNet();
    Eos eos{HelmLiteEos{}};
    Workload w(net);

    CostMonitorOptions co;
    co.metric = CostMetric::Work;
    CostMonitor mon_s(co), mon_b(co);

    auto serial = w.copy();
    auto batched = w.copy();
    ReactOptions bo;
    bo.batched = true;
    reactState(serial, net, eos, kDt, ReactOptions{}, &mon_s, 0);
    reactState(batched, net, eos, kDt, bo, &mon_b, 0);
    mon_s.commitStep(0);
    mon_b.commitStep(0);

    const auto cs = mon_s.costs(0);
    const auto cb = mon_b.costs(0);
    ASSERT_EQ(cs.size(), w.state.size());
    ASSERT_EQ(cb.size(), cs.size());
    for (std::size_t f = 0; f < cs.size(); ++f) {
        EXPECT_DOUBLE_EQ(cs[f], cb[f]) << "fab " << f;
    }
}

// --- WD-collision driver defaults ---------------------------------------

TEST(ReactBatched, WdCollisionDriverEnablesBatchedHybridBurn) {
    WdCollisionParams p;
    p.ncell = 8;
    p.max_grid_size = 8;
    auto wd = p.build();
    ASSERT_TRUE(wd.castro != nullptr);
    ASSERT_TRUE(wd.network != nullptr);
    EXPECT_EQ(wd.network->name(), "aprox13");
    const auto& opt = wd.castro->options();
    EXPECT_TRUE(opt.react.batched);
    EXPECT_TRUE(opt.react.batch.hybrid_cpu_tail);
    EXPECT_EQ(opt.rebalance.cost.metric, CostMetric::Hybrid);
}

TEST(ReactBatched, WdCollisionNetworkSelectableByName) {
    WdCollisionParams p;
    p.ncell = 8;
    p.max_grid_size = 8;
    p.network = "iso7";
    auto wd = p.build();
    ASSERT_TRUE(wd.network != nullptr);
    EXPECT_EQ(wd.network->name(), "iso7");
    EXPECT_EQ(wd.castro->network().nspec(), 7);

    p.network = "no_such_net";
    EXPECT_THROW(p.build(), std::invalid_argument);
}
