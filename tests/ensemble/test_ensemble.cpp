// The ensemble service layer: the uniform Scenario API, the
// ScenarioRegistry, and the EnsembleRunner that multiplexes many
// simulations over shared infrastructure.
//
// The load-bearing assertions are bit-identity: an N=1 ensemble run is
// byte-for-byte the run a hand-written driver loop produces, for every
// scenario kind on every backend; a mixed ensemble is deterministic and
// equal to its members run solo, threaded workers included. Around those
// sit the shared-infrastructure exactness checks: per-tenant PoolArena
// accounting balances to zero under adversarial cross-thread frees, the
// shared CommLedger buckets traffic by tenant, and per-tenant timer
// registries keep tenants' timings out of the global namespace.

#include "castro/sedov.hpp"
#include "castro/wd_collision.hpp"
#include "comm/ledger.hpp"
#include "core/arena.hpp"
#include "ensemble/runner.hpp"
#include "ensemble/scenarios.hpp"
#include "ensemble/work_queue.hpp"
#include "maestro/maestro.hpp"
#include "mesh/copier_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <stdexcept>
#include <thread>

using namespace exa;
using namespace exa::ensemble;

namespace {

// Tiny problem configs: the whole suite reruns under the Debug backend
// (snapshot/replay per kernel), so zone counts stay minimal.
castro::SedovParams tinySedov() {
    castro::SedovParams p;
    p.ncell = 8;
    p.max_grid_size = 8;
    p.nranks = 2;
    return p;
}

maestro::BubbleParams tinyBubble() {
    maestro::BubbleParams p;
    p.ncell = 8;
    p.max_grid_size = 8;
    p.nranks = 2;
    return p;
}

AmrBlastParams tinyAmrBlast() {
    AmrBlastParams p;
    p.ncell = 8;
    p.max_grid_size = 8;
    p.blocking_factor = 4;
    p.nranks = 2;
    return p;
}

castro::WdCollisionParams tinyWd() {
    castro::WdCollisionParams p;
    p.ncell = 8;
    p.max_grid_size = 8;
    p.nranks = 2;
    p.network = "iso7";
    return p;
}

const Backend kBackends[] = {Backend::Serial, Backend::OpenMP, Backend::SimGpu,
                             Backend::Debug};

// Run `scenario` alone through an N=1 ensemble and return its CRC.
std::uint32_t runSolo(std::unique_ptr<Scenario> scenario) {
    EnsembleRunner runner;
    const int id = runner.add(std::move(scenario));
    auto report = runner.run();
    return report.tenants[static_cast<std::size_t>(id)].crc;
}

} // namespace

// --- ScenarioConfig ------------------------------------------------------

TEST(ScenarioConfig, FromArgsParsesKeyValueTokens) {
    char a0[] = "prog", a1[] = "ncell=24", a2[] = "cfl=0.3", a3[] = "flag=on";
    char* argv[] = {a0, a1, a2, a3};
    auto cfg = ScenarioConfig::fromArgs(4, argv);
    EXPECT_EQ(cfg.getInt("ncell", 0), 24);
    EXPECT_DOUBLE_EQ(cfg.getReal("cfl", 0.0), 0.3);
    EXPECT_TRUE(cfg.getBool("flag", false));
    EXPECT_EQ(cfg.getString("absent", "dflt"), "dflt");
}

TEST(ScenarioConfig, RejectsMalformedTokensAndValues) {
    char a0[] = "prog", a1[] = "no-equals";
    char* argv[] = {a0, a1};
    EXPECT_THROW(ScenarioConfig::fromArgs(2, argv), std::invalid_argument);

    ScenarioConfig cfg;
    cfg.set("n", "12x");
    EXPECT_THROW(cfg.getInt("n", 0), std::invalid_argument);
    cfg.set("x", "1.5.2");
    EXPECT_THROW(cfg.getReal("x", 0.0), std::invalid_argument);
    cfg.set("b", "maybe");
    EXPECT_THROW(cfg.getBool("b", false), std::invalid_argument);
}

TEST(ScenarioConfig, UnconsumedKeysAreHardErrors) {
    ScenarioConfig cfg;
    cfg.set("ncell", "8");
    cfg.set("ncelll", "16"); // typo
    (void)cfg.getInt("ncell", 0);
    EXPECT_EQ(cfg.unconsumedKeys(), std::vector<std::string>{"ncelll"});
    try {
        cfg.requireAllConsumed("sedov");
        FAIL() << "expected throw";
    } catch (const std::invalid_argument& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("ncelll"), std::string::npos);
        EXPECT_NE(msg.find("sedov"), std::string::npos);
    }
}

// --- Registry ------------------------------------------------------------

TEST(ScenarioRegistry, BuiltInsAreRegistered) {
    auto& reg = ScenarioRegistry::instance();
    for (const char* name : {"sedov", "bubble", "amr-blast", "wd-collision"}) {
        EXPECT_TRUE(reg.contains(name)) << name;
    }
}

TEST(ScenarioRegistry, UnknownNameThrowsListingRegistered) {
    try {
        makeScenarioByName("sedoof");
        FAIL() << "expected throw";
    } catch (const std::invalid_argument& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("sedoof"), std::string::npos);
        EXPECT_NE(msg.find("sedov"), std::string::npos);
        EXPECT_NE(msg.find("wd-collision"), std::string::npos);
    }
}

TEST(ScenarioRegistry, UnknownConfigKeyThrows) {
    ScenarioConfig cfg;
    cfg.set("ncelll", "8"); // typo must not be silently ignored
    EXPECT_THROW(makeScenarioByName("sedov", cfg), std::invalid_argument);
}

TEST(ScenarioRegistry, ConfigConstructionMatchesTypedParams) {
    // The registry path and the typed-params path must build the same
    // problem: same initial state bytes.
    ScenarioConfig cfg;
    cfg.set("ncell", "8");
    cfg.set("max-grid-size", "8");
    cfg.set("nranks", "2");
    cfg.set("max-steps", "2");
    auto from_cfg = makeScenarioByName("sedov", cfg);
    from_cfg->init();

    auto from_params = std::make_unique<SedovScenario>(
        tinySedov(), RunLimits{0.0, 2, 0.0});
    from_params->init();
    EXPECT_EQ(from_cfg->stateCrc(), from_params->stateCrc());
}

// --- maxDt / finished ----------------------------------------------------

TEST(Scenario, MaxDtHonorsCapsAndTStop) {
    auto s = std::make_unique<SedovScenario>(tinySedov(),
                                             RunLimits{0.5, 0, 1.0e-9});
    s->init();
    EXPECT_DOUBLE_EQ(s->maxDt(), 1.0e-9); // max_dt cap binds
    EXPECT_FALSE(s->finished());

    auto s2 = std::make_unique<SedovScenario>(tinySedov(),
                                              RunLimits{0.0, 1, 0.0});
    s2->init();
    EXPECT_DOUBLE_EQ(s2->maxDt(), s2->driver().estimateDt());
    s2->advanceOnce();
    EXPECT_TRUE(s2->finished()); // max_steps = 1
}

// --- N=1 bit-identity, every scenario, every backend ---------------------
//
// The contract: an ensemble of one is byte-for-byte the run a bespoke
// driver loop produces. The direct side uses the raw driver (params
// build() + step(estimateDt())), NOT the Scenario wrapper, so the test
// also pins the wrapper's dt formula to the hand-written one.

TEST(EnsembleBitIdentity, SedovMatchesDirectDriverOnAllBackends) {
    auto net = makeIgnitionSimple();
    const auto p = tinySedov();
    for (Backend b : kBackends) {
        SCOPED_TRACE(backendName(b));
        ScopedBackend guard(b);
        auto direct = p.build(net);
        for (int s = 0; s < 2; ++s) direct->step(direct->estimateDt());
        const auto want = stateCrc(direct->state());

        const auto got = runSolo(std::make_unique<SedovScenario>(
            p, RunLimits{0.0, 2, 0.0}, makeIgnitionSimple()));
        EXPECT_EQ(got, want);
    }
}

TEST(EnsembleBitIdentity, BubbleMatchesDirectDriverOnAllBackends) {
    auto net = makeIgnitionSimple();
    const auto p = tinyBubble();
    for (Backend b : kBackends) {
        SCOPED_TRACE(backendName(b));
        ScopedBackend guard(b);
        auto direct = p.build(net);
        for (int s = 0; s < 2; ++s) direct->step(direct->estimateDt());
        const auto want = stateCrc(direct->state());

        const auto got = runSolo(std::make_unique<BubbleScenario>(
            p, RunLimits{0.0, 2, 0.0}, makeIgnitionSimple()));
        EXPECT_EQ(got, want);
    }
}

TEST(EnsembleBitIdentity, AmrBlastMatchesDirectDriverOnAllBackends) {
    auto net = makeIgnitionSimple();
    const auto p = tinyAmrBlast();
    for (Backend b : kBackends) {
        SCOPED_TRACE(backendName(b));
        ScopedBackend guard(b);
        auto direct = p.build(net);
        for (int s = 0; s < 2; ++s) direct->step(direct->estimateDt());
        std::uint32_t want = 0;
        for (int lev = 0; lev <= direct->finestLevel(); ++lev)
            want = stateCrc(direct->state(lev), want);

        const auto got = runSolo(std::make_unique<AmrBlastScenario>(
            p, RunLimits{0.0, 2, 0.0}, makeIgnitionSimple()));
        EXPECT_EQ(got, want);
    }
}

TEST(EnsembleBitIdentity, WdCollisionMatchesDirectDriverOnAllBackends) {
    const auto p = tinyWd();
    for (Backend b : kBackends) {
        SCOPED_TRACE(backendName(b));
        ScopedBackend guard(b);
        auto direct = p.build();
        for (int s = 0; s < 2; ++s)
            direct.castro->step(direct.castro->estimateDt());
        const auto want = stateCrc(direct.castro->state());

        const auto got = runSolo(std::make_unique<WdCollisionScenario>(
            p, RunLimits{0.0, 2, 0.0}));
        EXPECT_EQ(got, want);
    }
}

// --- Deprecated forwarders ----------------------------------------------
//
// The [[deprecated]] shims must stay exact aliases of the canonical
// build() API for out-of-tree users. In-tree they are a -Werror, so this
// block opts out locally.

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(DeprecatedForwarders, ForwardersMatchBuild) {
    auto net = makeIgnitionSimple();
    {
        const auto p = tinySedov();
        auto a = castro::makeSedov(p, net);
        auto b = p.build(net);
        a->step(a->estimateDt());
        b->step(b->estimateDt());
        EXPECT_EQ(stateCrc(a->state()), stateCrc(b->state()));
    }
    {
        const auto p = tinyBubble();
        auto a = maestro::makeReactingBubble(p, net);
        auto b = p.build(net);
        a->step(a->estimateDt());
        b->step(b->estimateDt());
        EXPECT_EQ(stateCrc(a->state()), stateCrc(b->state()));
    }
    {
        const auto p = tinyWd();
        auto a = castro::makeWdCollision(p);
        auto b = p.build();
        a.castro->step(a.castro->estimateDt());
        b.castro->step(b.castro->estimateDt());
        EXPECT_EQ(stateCrc(a.castro->state()), stateCrc(b.castro->state()));
        auto c = castro::makeWdCollision(p, *a.network);
        c.castro->step(c.castro->estimateDt());
        EXPECT_EQ(stateCrc(c.castro->state()), stateCrc(b.castro->state()));
    }
}
#pragma GCC diagnostic pop

// --- Mixed-ensemble determinism ------------------------------------------

namespace {

// A small mixed fleet; returns label -> CRC.
std::map<std::string, std::uint32_t> runMixed(int workers) {
    EnsembleOptions opt;
    opt.workers = workers;
    EnsembleRunner runner(opt);
    runner.add(std::make_unique<SedovScenario>(tinySedov(),
                                               RunLimits{0.0, 2, 0.0}));
    runner.add(std::make_unique<BubbleScenario>(tinyBubble(),
                                                RunLimits{0.0, 2, 0.0}));
    runner.add(std::make_unique<AmrBlastScenario>(tinyAmrBlast(),
                                                  RunLimits{0.0, 2, 0.0}));
    runner.add(std::make_unique<SedovScenario>(
        [] {
            auto p = tinySedov();
            p.E = 1.5; // a different survey point, same kind
            return p;
        }(),
        RunLimits{0.0, 2, 0.0}));
    auto report = runner.run();
    std::map<std::string, std::uint32_t> out;
    for (const auto& t : report.tenants) out[t.label] = t.crc;
    return out;
}

} // namespace

TEST(EnsembleDeterminism, MixedEnsembleMatchesSoloAndRepeats) {
    const auto once = runMixed(1);
    const auto again = runMixed(1);
    EXPECT_EQ(once, again);

    // Interleaving tenants changes nothing: each equals its solo run.
    EXPECT_EQ(once.at("sedov#0"),
              runSolo(std::make_unique<SedovScenario>(tinySedov(),
                                                      RunLimits{0.0, 2, 0.0})));
    EXPECT_EQ(once.at("bubble#1"),
              runSolo(std::make_unique<BubbleScenario>(
                  tinyBubble(), RunLimits{0.0, 2, 0.0})));
    EXPECT_EQ(once.at("amr-blast#2"),
              runSolo(std::make_unique<AmrBlastScenario>(
                  tinyAmrBlast(), RunLimits{0.0, 2, 0.0})));
    // The E=1.5 survey point must differ from the E=1 baseline.
    EXPECT_NE(once.at("sedov#0"), once.at("sedov#3"));
}

TEST(EnsembleDeterminism, ThreadedWorkersAreBitIdentical) {
    if (ExecConfig::backend() == Backend::SimGpu ||
        ExecConfig::backend() == Backend::Debug) {
        GTEST_SKIP() << "threaded workers are forced to 1 on this backend";
    }
    const auto solo = runMixed(1);
    const auto threaded = runMixed(2);
    const auto threaded2 = runMixed(2);
    EXPECT_EQ(solo, threaded);
    EXPECT_EQ(threaded, threaded2);
}

TEST(EnsembleDeterminism, SimGpuAndDebugForceOneWorker) {
    for (Backend b : {Backend::SimGpu, Backend::Debug}) {
        SCOPED_TRACE(backendName(b));
        ScopedBackend guard(b);
        EnsembleOptions opt;
        opt.workers = 4;
        EnsembleRunner runner(opt);
        runner.add(std::make_unique<SedovScenario>(tinySedov(),
                                                   RunLimits{0.0, 1, 0.0}));
        runner.add(std::make_unique<SedovScenario>(tinySedov(),
                                                   RunLimits{0.0, 1, 0.0}));
        auto report = runner.run();
        EXPECT_EQ(report.workers, 1);
    }
}

// --- Work-stealing queue -------------------------------------------------

TEST(WorkStealingQueue, OwnDequeIsFifoStealsComeFromTheBack) {
    WorkStealingQueue q(2);
    q.push(0, 10);
    q.push(0, 11);
    q.push(0, 12);
    int item = -1;
    ASSERT_TRUE(q.pop(0, item));
    EXPECT_EQ(item, 10); // own pops are FIFO
    ASSERT_TRUE(q.pop(1, item));
    EXPECT_EQ(item, 12); // steals come from the victim's back
    EXPECT_EQ(q.steals(), 1);
    ASSERT_TRUE(q.pop(0, item));
    EXPECT_EQ(item, 11);
    EXPECT_FALSE(q.pop(0, item));
    EXPECT_EQ(q.steals(), 1);
}

TEST(WorkStealingQueue, ConcurrentPopsLoseNothing) {
    const int n = 200;
    WorkStealingQueue q(4);
    for (int i = 0; i < n; ++i) q.push(i % 4, i);
    std::atomic<int> popped{0};
    std::vector<std::thread> pool;
    for (int w = 0; w < 4; ++w) {
        pool.emplace_back([&, w] {
            int item = -1;
            while (q.pop(w, item)) popped.fetch_add(1);
        });
    }
    for (auto& t : pool) t.join();
    EXPECT_EQ(popped.load(), n);
}

// --- Shared-infrastructure accounting ------------------------------------

TEST(TenantAccounting, ArenaStatsAreExactUnderCrossTenantFrees) {
    // Unit-level adversarial pattern: a block allocated under tenant 7 and
    // freed under tenant 9's scope (or no scope) must be credited to 7 —
    // under work stealing a tenant's blocks routinely die on a different
    // worker.
    auto& arena = thePoolArena();
    arena.resetTenantStats();
    void* a = nullptr;
    {
        ArenaTenantScope t7(7);
        a = arena.allocate(1000);
    }
    {
        ArenaTenantScope t9(9);
        arena.deallocate(a);
    }
    const auto s7 = arena.tenantStats(7);
    const auto s9 = arena.tenantStats(9);
    EXPECT_EQ(s7.allocs, 1u);
    EXPECT_EQ(s7.frees, 1u);
    EXPECT_EQ(s7.bytes_in_use, 0u);
    EXPECT_EQ(s7.peak_bytes, s7.bytes_allocated);
    EXPECT_EQ(s9.allocs, 0u);
    EXPECT_EQ(s9.frees, 0u);
    arena.resetTenantStats();
}

TEST(TenantAccounting, ArenaStatsBalanceAcrossThreads) {
    auto& arena = thePoolArena();
    arena.resetTenantStats();
    // Two threads allocate under their own tenant, then free each other's
    // blocks: every byte must still land on its owner, exactly.
    constexpr int kBlocks = 64;
    std::vector<void*> mine(kBlocks), theirs(kBlocks);
    {
        ArenaTenantScope t0(0);
        for (auto& p : mine) p = arena.allocate(512);
    }
    {
        ArenaTenantScope t1(1);
        for (auto& p : theirs) p = arena.allocate(512);
    }
    std::thread a([&] {
        ArenaTenantScope t0(0);
        for (void* p : theirs) arena.deallocate(p);
    });
    std::thread b([&] {
        ArenaTenantScope t1(1);
        for (void* p : mine) arena.deallocate(p);
    });
    a.join();
    b.join();
    for (int t : {0, 1}) {
        const auto s = arena.tenantStats(t);
        EXPECT_EQ(s.allocs, static_cast<std::uint64_t>(kBlocks)) << t;
        EXPECT_EQ(s.frees, static_cast<std::uint64_t>(kBlocks)) << t;
        EXPECT_EQ(s.bytes_in_use, 0u) << t;
    }
    arena.resetTenantStats();
}

TEST(TenantAccounting, EnsembleArenaBytesBalanceAfterTeardown) {
    if (dynamic_cast<PoolArena*>(The_Arena()) == nullptr) {
        GTEST_SKIP() << "tenant accounting requires the pool arena";
    }
    auto& arena = thePoolArena();
    arena.resetTenantStats();
    {
        EnsembleRunner runner;
        runner.add(std::make_unique<SedovScenario>(tinySedov(),
                                                   RunLimits{0.0, 2, 0.0}));
        runner.add(std::make_unique<BubbleScenario>(tinyBubble(),
                                                    RunLimits{0.0, 2, 0.0}));
        auto report = runner.run();
        for (const auto& t : report.tenants) {
            EXPECT_GT(t.arena_peak_bytes, 0u) << t.label;
            EXPECT_GE(t.arena_allocated_bytes, t.arena_peak_bytes) << t.label;
        }
        // States are live while the runner holds the scenarios.
        for (int id : {0, 1}) {
            EXPECT_GT(arena.tenantStats(id).bytes_in_use, 0u) << id;
        }
    }
    // Runner destroyed: every tenant byte must come back, even though the
    // frees ran outside any tenant scope.
    for (int id : {0, 1}) {
        const auto s = arena.tenantStats(id);
        EXPECT_EQ(s.bytes_in_use, 0u) << id;
        EXPECT_EQ(s.allocs, s.frees) << id;
    }
    arena.resetTenantStats();
}

TEST(TenantAccounting, SharedLedgerBucketsTrafficPerTenant) {
    CommLedger ledger;
    EnsembleOptions opt;
    opt.ledger = &ledger;
    EnsembleRunner runner(opt);
    // Multi-box domains, so the halo exchanges actually put bytes on the
    // wire (a single 8^3 box has no neighbors to talk to).
    auto sp = tinySedov();
    sp.max_grid_size = 4;
    auto bp = tinyBubble();
    bp.max_grid_size = 4;
    runner.add(std::make_unique<SedovScenario>(sp, RunLimits{0.0, 2, 0.0}));
    runner.add(std::make_unique<BubbleScenario>(bp, RunLimits{0.0, 2, 0.0}));
    auto report = runner.run();

    std::int64_t tenant_bytes = 0;
    for (const auto& t : report.tenants) {
        EXPECT_GT(t.comm_bytes, 0) << t.label;
        EXPECT_GT(t.comm_messages, 0) << t.label;
        EXPECT_EQ(t.comm_bytes, ledger.tenantBytes(t.label));
        tenant_bytes += t.comm_bytes;
    }
    // Every recorded byte happened inside some tenant's scope.
    EXPECT_EQ(tenant_bytes, ledger.totalBytes());
    const auto names = ledger.tenantNames();
    EXPECT_EQ(names.size(), 2u);
}

TEST(TenantAccounting, PerTenantTimersStayOutOfTheGlobalRegistry) {
    auto& global = TimerRegistry::instance();
    const double global_step_before = global.seconds("ensemble/step");

    EnsembleRunner runner;
    const int id = runner.add(std::make_unique<SedovScenario>(
        tinySedov(), RunLimits{0.0, 3, 0.0}));
    runner.run();

    auto& timers = runner.tenantTimers(id);
    EXPECT_EQ(timers.tag(), "sedov#0");
    EXPECT_EQ(timers.calls("ensemble/step"), 3u);
    EXPECT_EQ(timers.calls("ensemble/init"), 1u);
    EXPECT_GT(timers.seconds("ensemble/step"), 0.0);
    // The tenant's regions did not leak into the process-global registry.
    EXPECT_DOUBLE_EQ(global.seconds("ensemble/step"), global_step_before);
}

TEST(TenantAccounting, ScopedTimerRegistryRedirectsAndRestores) {
    TimerRegistry mine("scoped");
    {
        ScopedTimerRegistry scope(&mine);
        TimerRegion r("unit/region");
    }
    EXPECT_EQ(mine.calls("unit/region"), 1u);
    EXPECT_EQ(&TimerRegistry::current(), &TimerRegistry::instance());
}

TEST(TenantAccounting, LedgerTenantScopeNestsAndRestores) {
    EXPECT_EQ(CommLedger::currentTenant(), "");
    {
        ScopedLedgerTenant outer("a");
        EXPECT_EQ(CommLedger::currentTenant(), "a");
        {
            ScopedLedgerTenant inner("b");
            EXPECT_EQ(CommLedger::currentTenant(), "b");
        }
        EXPECT_EQ(CommLedger::currentTenant(), "a");
    }
    EXPECT_EQ(CommLedger::currentTenant(), "");
}

// --- Report --------------------------------------------------------------

TEST(EnsembleReport, AggregatesThroughputAndLatency) {
    EnsembleRunner runner;
    runner.add(std::make_unique<SedovScenario>(tinySedov(),
                                               RunLimits{0.0, 2, 0.0}));
    runner.add(std::make_unique<SedovScenario>(tinySedov(),
                                               RunLimits{0.0, 3, 0.0}));
    auto report = runner.run();
    ASSERT_EQ(report.tenants.size(), 2u);
    EXPECT_EQ(report.tenants[0].steps, 2);
    EXPECT_EQ(report.tenants[1].steps, 3);
    EXPECT_GT(report.wall_seconds, 0.0);
    EXPECT_GT(report.sims_per_hour, 0.0);
    EXPECT_GT(report.zone_steps_per_sec, 0.0);
    EXPECT_GT(report.p50_ms, 0.0);
    EXPECT_GE(report.p99_ms, report.p50_ms);
    EXPECT_EQ(report.tenants[0].zone_steps, 2 * 8 * 8 * 8);
    EXPECT_FALSE(report.table().empty());
    EXPECT_FALSE(report.tenants[0].summary.empty());
}

TEST(EnsembleRunner, RunIsSingleShot) {
    EnsembleRunner runner;
    runner.add(std::make_unique<SedovScenario>(tinySedov(),
                                               RunLimits{0.0, 1, 0.0}));
    runner.run();
    EXPECT_THROW(runner.run(), std::logic_error);
}

TEST(TenantAccounting, CopierCacheScalesWithLiveTenants) {
    // The copier cache is process-wide; without tenant-aware sizing, N
    // co-resident tenants with distinct grids evict each other's plans
    // every scheduling round. Save and restore the cache's knobs — other
    // tests share the singleton.
    auto& cache = CopierCache::instance();
    const std::size_t saved_base = cache.baseCapacity();
    const int saved_tenants = cache.liveTenants();
    const Periodicity none;

    // 8 "tenants", one distinct grid each; every FillBoundary plan is one
    // LRU entry, so a base capacity of 4 cannot hold a round of 8.
    std::vector<BoxArray> grids;
    std::vector<DistributionMapping> dms;
    for (int t = 0; t < 8; ++t) {
        Box dom({0, 0, 0}, {7, 7, 7 + t});
        BoxArray ba(dom);
        ba.maxSize(4);
        dms.emplace_back(ba, 2);
        grids.push_back(ba);
    }
    auto round = [&] {
        for (int t = 0; t < 8; ++t) cache.fillBoundary(grids[t], dms[t], 1, none);
    };
    auto misses = [&] { return cache.stats().misses; };
    auto hits = [&] { return cache.stats().hits; };

    cache.noteLiveTenants(0);
    cache.setCapacity(4);
    cache.clear();
    EXPECT_EQ(cache.capacity(), 4u);
    round(); // populate (8 misses, 4 evictions)
    const auto h0 = hits();
    round(); // the LRU held only the last 4: every lookup misses again
    EXPECT_EQ(hits(), h0);

    // With the live-tenant count reported, capacity scales to
    // max(base, tenants * per-tenant) and a full round fits.
    cache.noteLiveTenants(8);
    EXPECT_EQ(cache.capacity(),
              std::max<std::size_t>(4, 8 * cache.perTenantCapacity()));
    round(); // repopulate
    const auto m0 = misses();
    round(); // all hits: no thrash
    EXPECT_EQ(misses(), m0);

    // Tenants retiring shrinks the cache back down.
    cache.noteLiveTenants(0);
    EXPECT_EQ(cache.capacity(), 4u);
    EXPECT_LE(cache.stats().plans, 4u);

    cache.setCapacity(saved_base);
    cache.noteLiveTenants(saved_tenants);
    cache.clear();
}

TEST(EnsembleRunner, LiveTenantCountReachesCopierCache) {
    // The runner reports inits and retirements to the process-wide cache.
    auto& cache = CopierCache::instance();
    cache.noteLiveTenants(0);
    EnsembleRunner runner;
    runner.add(std::make_unique<SedovScenario>(tinySedov(),
                                               RunLimits{0.0, 1, 0.0}));
    runner.add(std::make_unique<SedovScenario>(tinySedov(),
                                               RunLimits{0.0, 2, 0.0}));
    runner.run();
    // Every tenant retired: the live count is back to zero.
    EXPECT_EQ(cache.liveTenants(), 0);
}

TEST(EnsembleRunner, DeviceResidencyTracksLiveTenants) {
    // Pack enough modeled state onto the device and the ensemble reports
    // oversubscription (the Unified-Memory eviction penalty regime).
    ScopedBackend gpu(Backend::SimGpu);
    DeviceModel device;
    device.attach();
    EnsembleOptions opt;
    opt.device = &device;
    EnsembleRunner runner(opt);
    runner.add(std::make_unique<SedovScenario>(tinySedov(),
                                               RunLimits{0.0, 1, 0.0}));
    auto report = runner.run();
    device.detach();
    // One tiny Sedov does not oversubscribe a 16 GB device...
    EXPECT_FALSE(report.oversubscribed);
    // ...and retired tenants release their residency.
    EXPECT_DOUBLE_EQ(device.residentBytes(), 0.0);
    EXPECT_GT(device.numLaunches(), 0);
}
