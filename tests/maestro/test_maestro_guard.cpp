#include "core/fault.hpp"
#include "maestro/maestro.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

using namespace exa;
using namespace exa::maestro;

namespace {

// A reacting bubble hot enough that every bubble zone burns, under the
// step guard. The net must outlive the driver (held by const&).
struct GuardedBubble {
    ReactionNetwork net = makeIgnitionSimple();
    std::unique_ptr<Maestro> m;

    explicit GuardedBubble(const StepGuardOptions& guard) {
        BubbleParams p;
        p.ncell = 8;
        p.max_grid_size = 8;
        p.do_react = true;
        p.T_bubble = 1.0e9;
        p.guard = guard;
        m = p.build(net);
    }
};

StepGuardOptions quietGuard() {
    StepGuardOptions g;
    g.enabled = true;
    g.verbose = false;
    return g;
}

bool stateIsFinite(const MultiFab& s) {
    for (std::size_t b = 0; b < s.size(); ++b) {
        auto q = s.const_array(static_cast<int>(b));
        const Box& vb = s.box(static_cast<int>(b));
        for (int n = 0; n < s.nComp(); ++n)
            for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
                for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                    for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i)
                        if (!std::isfinite(q(i, j, k, n))) return false;
    }
    return true;
}

} // namespace

TEST(MaestroGuard, CleanGuardedStepIsClean) {
    fault::disarmAll();
    GuardedBubble gb(quietGuard());
    const auto burn = gb.m->step(1.0e-8);
    EXPECT_GT(burn.zones, 0);
    EXPECT_EQ(gb.m->retryStats().steps_guarded, 1);
    EXPECT_EQ(gb.m->retryStats().retries, 0);
    EXPECT_EQ(gb.m->stepCount(), 1);
}

TEST(MaestroGuard, InjectedBurnFailureRetriesAndConverges) {
    fault::disarmAll();
    GuardedBubble gb(quietGuard());

    fault::ScopedFault f(fault::Site::BurnZoneFailure); // first burn fails
    const auto burn = gb.m->step(1.0e-8);

    EXPECT_EQ(fault::stats(fault::Site::BurnZoneFailure).fires, 1);
    EXPECT_GE(gb.m->retryStats().retries, 1);
    EXPECT_EQ(burn.failures, 0); // the accepted attempt burned cleanly
    EXPECT_EQ(gb.m->stepCount(), 1);
    EXPECT_DOUBLE_EQ(gb.m->time(), 1.0e-8);
    EXPECT_TRUE(stateIsFinite(gb.m->state()));
    EXPECT_GT(gb.m->state().min(MaestroLayout::QT), 0.0);
}

TEST(MaestroGuard, ExhaustedRetriesHardErrorThrows) {
    fault::disarmAll();
    StepGuardOptions guard = quietGuard();
    guard.max_retries = 1;
    GuardedBubble gb(guard);

    fault::Spec forever;
    forever.count = 0;
    fault::ScopedFault f(fault::Site::BurnZoneFailure, forever);
    EXPECT_THROW(gb.m->step(1.0e-8), StepRetryError);
    EXPECT_EQ(gb.m->retryStats().degraded, 1);
}

TEST(MaestroGuard, ExhaustedRetriesClampAndWarnContinues) {
    fault::disarmAll();
    StepGuardOptions guard = quietGuard();
    guard.max_retries = 1;
    guard.policy = RetryPolicy::ClampAndWarn;
    GuardedBubble gb(guard);

    fault::Spec forever;
    forever.count = 0;
    fault::ScopedFault f(fault::Site::BurnZoneFailure, forever);
    EXPECT_NO_THROW(gb.m->step(1.0e-8));
    EXPECT_EQ(gb.m->retryStats().degraded, 1);
    EXPECT_EQ(gb.m->stepCount(), 1);
    // The degraded state is still usable: finite with positive T.
    EXPECT_TRUE(stateIsFinite(gb.m->state()));
    EXPECT_GT(gb.m->state().min(MaestroLayout::QT), 0.0);
}

TEST(MaestroGuard, GuardDisabledBehavesAsBefore) {
    fault::disarmAll();
    StepGuardOptions off;
    off.enabled = false;
    GuardedBubble gb(off);
    gb.m->step(1.0e-8);
    EXPECT_EQ(gb.m->retryStats().steps_guarded, 0);
    EXPECT_EQ(gb.m->stepCount(), 1);
}
