#include "core/parallel_for.hpp"
#include "maestro/maestro.hpp"

#include <gtest/gtest.h>

#include <cmath>

using namespace exa;
using namespace exa::maestro;

TEST(BaseState, HydrostaticBalanceHolds) {
    Eos eos{HelmLiteEos{}};
    auto net = makeIgnitionSimple();
    std::vector<Real> X = {1.0, 0.0};
    const int nz = 64;
    const Real dz = 1.0e6;
    const Real g = -1.5e10;
    BaseState base(eos, net, 2.6e9, 6.0e8, X, nz, 0.0, dz, g);

    EXPECT_EQ(base.nz(), nz);
    // dp0/dz ~ g * rho0 between adjacent zones, within integration error.
    for (int k = 1; k < nz; ++k) {
        const Real dpdz = (base.p0(k) - base.p0(k - 1)) / dz;
        const Real rho_mid = 0.5 * (base.rho0(k) + base.rho0(k - 1));
        ASSERT_NEAR(dpdz / (g * rho_mid), 1.0, 1e-3) << "zone " << k;
    }
    // Density decreases upward.
    EXPECT_LT(base.rho0(nz - 1), base.rho0(0));
}

TEST(BaseState, IndexClamping) {
    Eos eos{HelmLiteEos{}};
    auto net = makeIgnitionSimple();
    std::vector<Real> X = {1.0, 0.0};
    BaseState base(eos, net, 1.0e9, 5.0e8, X, 8, 0.0, 1.0e6, -1.0e10);
    EXPECT_DOUBLE_EQ(base.rho0(-3), base.rho0(0));
    EXPECT_DOUBLE_EQ(base.rho0(100), base.rho0(7));
}

namespace {

std::unique_ptr<Maestro> makeBubbleNoReact(int n) {
    BubbleParams p;
    p.ncell = n;
    p.max_grid_size = std::max(8, n / 2);
    p.do_react = false;
    auto net_local = new ReactionNetwork(makeIgnitionSimple()); // kept alive
    return p.build(*net_local);
}

} // namespace

TEST(Maestro, RhoOfMatchesBaseStateAtBaseConditions) {
    auto m = makeBubbleNoReact(8);
    const auto& base = m->base();
    std::vector<Real> X = {1.0, 0.0};
    for (int k : {0, 3, 7}) {
        EXPECT_NEAR(m->rhoOf(k, base.T0(k), X.data()) / base.rho0(k), 1.0, 1e-8);
    }
    // Hotter -> less dense at the same pressure.
    EXPECT_LT(m->rhoOf(3, 2.0 * base.T0(3), X.data()), base.rho0(3));
}

TEST(Maestro, ProjectionReducesDivergence) {
    auto m = makeBubbleNoReact(16);
    // Inject a strongly divergent velocity field.
    auto& s = m->state();
    const Geometry& g = m->geom();
    for (std::size_t b = 0; b < s.size(); ++b) {
        auto q = s.array(static_cast<int>(b));
        const Box& vb = s.box(static_cast<int>(b));
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                    const Real x = g.cellCenter(0, i) / g.probHi(0);
                    const Real y = g.cellCenter(1, j) / g.probHi(1);
                    const Real z = g.cellCenter(2, k) / g.probHi(2);
                    q(i, j, k, 0) = 1.0e5 * std::sin(2 * constants::pi * x);
                    q(i, j, k, 1) = 1.0e5 * std::cos(2 * constants::pi * y);
                    q(i, j, k, 2) = 1.0e5 * z * (1.0 - z);
                }
    }
    const Real div0 = m->maxAbsDivergence();
    ASSERT_GT(div0, 0.0);
    m->project();
    const Real div1 = m->maxAbsDivergence();
    EXPECT_LT(div1, 0.35 * div0); // approximate projection: large reduction
    EXPECT_GT(m->lastProjectionVcycles(), 0);
}

TEST(Maestro, QuiescentAtmosphereStaysQuiescent) {
    // No bubble: the base state is in equilibrium, so velocities stay
    // negligible compared to the bubble case.
    BubbleParams p;
    p.ncell = 16;
    p.do_react = false;
    p.T_bubble = p.T_base; // no perturbation
    auto net = makeIgnitionSimple();
    auto m = p.build(net);
    for (int s = 0; s < 5; ++s) m->step(std::min(m->estimateDt(), 1.0e-4));
    Real umax = 0.0;
    for (std::size_t b = 0; b < m->state().size(); ++b) {
        auto q = m->state().const_array(static_cast<int>(b));
        const Box& vb = m->state().box(static_cast<int>(b));
        umax = std::max(umax, ParallelReduceMax(vb, [=](int i, int j, int k) {
                            return std::abs(q(i, j, k, MaestroLayout::QW));
                        }));
    }
    EXPECT_LT(umax, 1.0e3); // cm/s; bubble runs develop ~1e6-1e7
}

TEST(Maestro, HotBubbleRises) {
    BubbleParams p;
    p.ncell = 16;
    p.do_react = false;
    auto net = makeIgnitionSimple();
    auto m = p.build(net);
    const Real h0 = m->bubbleHeight();
    for (int s = 0; s < 12; ++s) m->step(m->estimateDt());
    const Real h1 = m->bubbleHeight();
    EXPECT_GT(h1, h0 + 0.25 * m->geom().cellSize(2));
    // And it rose with upward velocity present.
    EXPECT_GT(m->state().max(MaestroLayout::QW), 0.0);
}

TEST(Maestro, ReactionsHeatTheBubble) {
    BubbleParams p;
    p.ncell = 8;
    p.max_grid_size = 8;
    p.do_react = true;
    p.T_bubble = 1.0e9; // vigorous carbon burning at rho ~ 2.6e9
    auto net = makeIgnitionSimple();
    auto m = p.build(net);
    const Real T0 = m->maxTemperature();
    auto burn = m->step(1.0e-8);
    EXPECT_GT(burn.zones, 0);
    EXPECT_GT(m->maxTemperature(), T0);
    // Fuel was consumed somewhere.
    Real xmin = 1.0;
    for (std::size_t b = 0; b < m->state().size(); ++b) {
        auto q = m->state().const_array(static_cast<int>(b));
        const Box& vb = m->state().box(static_cast<int>(b));
        xmin = std::min(xmin, ParallelReduceMin(vb, [=](int i, int j, int k) {
                            return q(i, j, k, MaestroLayout::QFS);
                        }));
    }
    EXPECT_LT(xmin, 1.0);
}

TEST(Maestro, TimestepHasNoSoundSpeed) {
    // The low Mach step at near-rest conditions must vastly exceed the
    // compressible CFL dt ~ dx/cs (cs ~ 1e9 cm/s at WD densities).
    auto m = makeBubbleNoReact(16);
    const Real dx = m->geom().cellSize(0);
    const Real dt = m->estimateDt();
    const Real dt_compressible = dx / 1.0e9;
    EXPECT_GT(dt, 20.0 * dt_compressible);
}

TEST(Maestro, AdvectionPreservesConstantField) {
    auto m = makeBubbleNoReact(8);
    // Constant T and X with a uniform velocity: one step must leave T
    // unchanged (the advection scheme preserves constants exactly).
    auto& s = m->state();
    for (std::size_t b = 0; b < s.size(); ++b) {
        auto q = s.array(static_cast<int>(b));
        const Box& vb = s.box(static_cast<int>(b));
        ParallelFor(vb, [=](int i, int j, int k) {
            q(i, j, k, MaestroLayout::QU) = 1.0e5;
            q(i, j, k, MaestroLayout::QV) = 0.0;
            q(i, j, k, MaestroLayout::QW) = 0.0;
            q(i, j, k, MaestroLayout::QT) = 5.5e8;
        });
    }
    // advect() is private; a full step also applies buoyancy (T uniform
    // at fixed z varies rho vs rho0 — nonzero, so only check T).
    m->step(1.0e-4);
    EXPECT_NEAR(m->state().min(MaestroLayout::QT), 5.5e8, 1.0);
    EXPECT_NEAR(m->state().max(MaestroLayout::QT), 5.5e8, 1.0);
}
