#!/usr/bin/env bash
# Sanitizer sweep over the memcpy-heavy and kernel-contract suites.
#
# Builds the tree under EXA_SANITIZE and runs the targeted ctest labels
# (ROADMAP's CI item): migration and refluxing are memcpy-heavy
# (rebalance, amr), the debug-backend reruns replay every kernel in
# shuffled zone order, and the resilience suite hands staged checkpoint
# buffers to a background drain thread — under TSan that covers the
# main-thread/drain-thread handshake the runtime checkers cannot see.
# The combination is where sanitizers catch what the runtime checkers
# cannot, and vice versa. A seeded multi-fault campaign smoke test runs
# last: rank failures + halo corruption + a checkpoint bit flip through
# the full recover/replay path under the sanitizer.
#
# Usage:
#   ci/sanitize.sh                  # ASan+UBSan (default)
#   ci/sanitize.sh thread           # TSan (cannot combine with address)
#   ci/sanitize.sh "address;leak"   # any EXA_SANITIZE list
set -euo pipefail

SAN="${1:-address;undefined}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-sanitize-${SAN//;/-}"

# Repeated `ctest -L` flags AND together; one regex is the union.
LABELS='rebalance|debug-backend|amr|burn|resilience|ensemble|gravity'

cmake -B "${BUILD}" -S "${ROOT}" -DEXA_SANITIZE="${SAN}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD}" -j "$(nproc)"
ctest --test-dir "${BUILD}" --output-on-failure -j "$(nproc)" -L "${LABELS}"

# Seeded 3-fault campaign smoke test: the supervised Sedov campaign
# (rank-failure + halo-payload-corrupt + checkpoint-bit-flip) end to end
# under the sanitizer, exercising kill/shrink/restore/replay and the
# async drain thread outside the gtest harness.
"${BUILD}/tests/test_resilience" \
    --gtest_filter='ResilienceTest.CampaignSurvivesMultiFaultSchedule'
