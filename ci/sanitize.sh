#!/usr/bin/env bash
# Sanitizer sweep over the memcpy-heavy and kernel-contract suites.
#
# Builds the tree under EXA_SANITIZE and runs the targeted ctest labels
# (ROADMAP's CI item): migration and refluxing are memcpy-heavy
# (rebalance, amr), and the debug-backend reruns replay every kernel in
# shuffled zone order — the combination is where sanitizers catch what
# the runtime checkers cannot, and vice versa.
#
# Usage:
#   ci/sanitize.sh                  # ASan+UBSan (default)
#   ci/sanitize.sh thread           # TSan (cannot combine with address)
#   ci/sanitize.sh "address;leak"   # any EXA_SANITIZE list
set -euo pipefail

SAN="${1:-address;undefined}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-sanitize-${SAN//;/-}"

# Repeated `ctest -L` flags AND together; one regex is the union.
LABELS='rebalance|debug-backend|amr|burn'

cmake -B "${BUILD}" -S "${ROOT}" -DEXA_SANITIZE="${SAN}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD}" -j "$(nproc)"
ctest --test-dir "${BUILD}" --output-on-failure -j "$(nproc)" -L "${LABELS}"
