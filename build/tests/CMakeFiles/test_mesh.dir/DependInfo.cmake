
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mesh/test_amr.cpp" "tests/CMakeFiles/test_mesh.dir/mesh/test_amr.cpp.o" "gcc" "tests/CMakeFiles/test_mesh.dir/mesh/test_amr.cpp.o.d"
  "/root/repo/tests/mesh/test_box_array.cpp" "tests/CMakeFiles/test_mesh.dir/mesh/test_box_array.cpp.o" "gcc" "tests/CMakeFiles/test_mesh.dir/mesh/test_box_array.cpp.o.d"
  "/root/repo/tests/mesh/test_geometry.cpp" "tests/CMakeFiles/test_mesh.dir/mesh/test_geometry.cpp.o" "gcc" "tests/CMakeFiles/test_mesh.dir/mesh/test_geometry.cpp.o.d"
  "/root/repo/tests/mesh/test_interp.cpp" "tests/CMakeFiles/test_mesh.dir/mesh/test_interp.cpp.o" "gcc" "tests/CMakeFiles/test_mesh.dir/mesh/test_interp.cpp.o.d"
  "/root/repo/tests/mesh/test_multifab.cpp" "tests/CMakeFiles/test_mesh.dir/mesh/test_multifab.cpp.o" "gcc" "tests/CMakeFiles/test_mesh.dir/mesh/test_multifab.cpp.o.d"
  "/root/repo/tests/mesh/test_phys_bc.cpp" "tests/CMakeFiles/test_mesh.dir/mesh/test_phys_bc.cpp.o" "gcc" "tests/CMakeFiles/test_mesh.dir/mesh/test_phys_bc.cpp.o.d"
  "/root/repo/tests/mesh/test_plotfile.cpp" "tests/CMakeFiles/test_mesh.dir/mesh/test_plotfile.cpp.o" "gcc" "tests/CMakeFiles/test_mesh.dir/mesh/test_plotfile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mesh/CMakeFiles/exastro_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/exastro_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/exastro_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/exastro_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
