file(REMOVE_RECURSE
  "CMakeFiles/test_mesh.dir/mesh/test_amr.cpp.o"
  "CMakeFiles/test_mesh.dir/mesh/test_amr.cpp.o.d"
  "CMakeFiles/test_mesh.dir/mesh/test_box_array.cpp.o"
  "CMakeFiles/test_mesh.dir/mesh/test_box_array.cpp.o.d"
  "CMakeFiles/test_mesh.dir/mesh/test_geometry.cpp.o"
  "CMakeFiles/test_mesh.dir/mesh/test_geometry.cpp.o.d"
  "CMakeFiles/test_mesh.dir/mesh/test_interp.cpp.o"
  "CMakeFiles/test_mesh.dir/mesh/test_interp.cpp.o.d"
  "CMakeFiles/test_mesh.dir/mesh/test_multifab.cpp.o"
  "CMakeFiles/test_mesh.dir/mesh/test_multifab.cpp.o.d"
  "CMakeFiles/test_mesh.dir/mesh/test_phys_bc.cpp.o"
  "CMakeFiles/test_mesh.dir/mesh/test_phys_bc.cpp.o.d"
  "CMakeFiles/test_mesh.dir/mesh/test_plotfile.cpp.o"
  "CMakeFiles/test_mesh.dir/mesh/test_plotfile.cpp.o.d"
  "test_mesh"
  "test_mesh.pdb"
  "test_mesh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
