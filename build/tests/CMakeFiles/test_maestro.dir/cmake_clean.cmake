file(REMOVE_RECURSE
  "CMakeFiles/test_maestro.dir/maestro/test_maestro.cpp.o"
  "CMakeFiles/test_maestro.dir/maestro/test_maestro.cpp.o.d"
  "test_maestro"
  "test_maestro.pdb"
  "test_maestro[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_maestro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
