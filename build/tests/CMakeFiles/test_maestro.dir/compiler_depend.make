# Empty compiler generated dependencies file for test_maestro.
# This may be replaced when dependencies are built.
