file(REMOVE_RECURSE
  "CMakeFiles/test_micro.dir/microphysics/test_burner.cpp.o"
  "CMakeFiles/test_micro.dir/microphysics/test_burner.cpp.o.d"
  "CMakeFiles/test_micro.dir/microphysics/test_eos.cpp.o"
  "CMakeFiles/test_micro.dir/microphysics/test_eos.cpp.o.d"
  "CMakeFiles/test_micro.dir/microphysics/test_integrators.cpp.o"
  "CMakeFiles/test_micro.dir/microphysics/test_integrators.cpp.o.d"
  "CMakeFiles/test_micro.dir/microphysics/test_linalg.cpp.o"
  "CMakeFiles/test_micro.dir/microphysics/test_linalg.cpp.o.d"
  "CMakeFiles/test_micro.dir/microphysics/test_network.cpp.o"
  "CMakeFiles/test_micro.dir/microphysics/test_network.cpp.o.d"
  "test_micro"
  "test_micro.pdb"
  "test_micro[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
