
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/microphysics/test_burner.cpp" "tests/CMakeFiles/test_micro.dir/microphysics/test_burner.cpp.o" "gcc" "tests/CMakeFiles/test_micro.dir/microphysics/test_burner.cpp.o.d"
  "/root/repo/tests/microphysics/test_eos.cpp" "tests/CMakeFiles/test_micro.dir/microphysics/test_eos.cpp.o" "gcc" "tests/CMakeFiles/test_micro.dir/microphysics/test_eos.cpp.o.d"
  "/root/repo/tests/microphysics/test_integrators.cpp" "tests/CMakeFiles/test_micro.dir/microphysics/test_integrators.cpp.o" "gcc" "tests/CMakeFiles/test_micro.dir/microphysics/test_integrators.cpp.o.d"
  "/root/repo/tests/microphysics/test_linalg.cpp" "tests/CMakeFiles/test_micro.dir/microphysics/test_linalg.cpp.o" "gcc" "tests/CMakeFiles/test_micro.dir/microphysics/test_linalg.cpp.o.d"
  "/root/repo/tests/microphysics/test_network.cpp" "tests/CMakeFiles/test_micro.dir/microphysics/test_network.cpp.o" "gcc" "tests/CMakeFiles/test_micro.dir/microphysics/test_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/microphysics/CMakeFiles/exastro_micro.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/exastro_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
