
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_arena.cpp" "tests/CMakeFiles/test_core.dir/core/test_arena.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_arena.cpp.o.d"
  "/root/repo/tests/core/test_array4.cpp" "tests/CMakeFiles/test_core.dir/core/test_array4.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_array4.cpp.o.d"
  "/root/repo/tests/core/test_box.cpp" "tests/CMakeFiles/test_core.dir/core/test_box.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_box.cpp.o.d"
  "/root/repo/tests/core/test_parallel_for.cpp" "tests/CMakeFiles/test_core.dir/core/test_parallel_for.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_parallel_for.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/exastro_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
