file(REMOVE_RECURSE
  "CMakeFiles/test_castro.dir/castro/test_castro_amr.cpp.o"
  "CMakeFiles/test_castro.dir/castro/test_castro_amr.cpp.o.d"
  "CMakeFiles/test_castro.dir/castro/test_castro_physics.cpp.o"
  "CMakeFiles/test_castro.dir/castro/test_castro_physics.cpp.o.d"
  "CMakeFiles/test_castro.dir/castro/test_hydro.cpp.o"
  "CMakeFiles/test_castro.dir/castro/test_hydro.cpp.o.d"
  "CMakeFiles/test_castro.dir/castro/test_properties.cpp.o"
  "CMakeFiles/test_castro.dir/castro/test_properties.cpp.o.d"
  "test_castro"
  "test_castro.pdb"
  "test_castro[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_castro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
