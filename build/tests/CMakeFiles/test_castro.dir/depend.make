# Empty dependencies file for test_castro.
# This may be replaced when dependencies are built.
