# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_comm[1]_include.cmake")
include("/root/repo/build/tests/test_perf[1]_include.cmake")
include("/root/repo/build/tests/test_solvers[1]_include.cmake")
include("/root/repo/build/tests/test_micro[1]_include.cmake")
include("/root/repo/build/tests/test_castro[1]_include.cmake")
include("/root/repo/build/tests/test_maestro[1]_include.cmake")
