# Empty dependencies file for reacting_bubble.
# This may be replaced when dependencies are built.
