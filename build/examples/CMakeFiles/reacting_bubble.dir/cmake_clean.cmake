file(REMOVE_RECURSE
  "CMakeFiles/reacting_bubble.dir/reacting_bubble.cpp.o"
  "CMakeFiles/reacting_bubble.dir/reacting_bubble.cpp.o.d"
  "reacting_bubble"
  "reacting_bubble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reacting_bubble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
