# Empty compiler generated dependencies file for wd_collision.
# This may be replaced when dependencies are built.
