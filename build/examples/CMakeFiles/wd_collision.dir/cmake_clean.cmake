file(REMOVE_RECURSE
  "CMakeFiles/wd_collision.dir/wd_collision.cpp.o"
  "CMakeFiles/wd_collision.dir/wd_collision.cpp.o.d"
  "wd_collision"
  "wd_collision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wd_collision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
