file(REMOVE_RECURSE
  "CMakeFiles/amr_blast.dir/amr_blast.cpp.o"
  "CMakeFiles/amr_blast.dir/amr_blast.cpp.o.d"
  "amr_blast"
  "amr_blast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_blast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
