# Empty compiler generated dependencies file for amr_blast.
# This may be replaced when dependencies are built.
