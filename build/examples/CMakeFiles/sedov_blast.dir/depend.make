# Empty dependencies file for sedov_blast.
# This may be replaced when dependencies are built.
