# Empty compiler generated dependencies file for bench_ablation_hybrid_burn.
# This may be replaced when dependencies are built.
