file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hybrid_burn.dir/bench_ablation_hybrid_burn.cpp.o"
  "CMakeFiles/bench_ablation_hybrid_burn.dir/bench_ablation_hybrid_burn.cpp.o.d"
  "bench_ablation_hybrid_burn"
  "bench_ablation_hybrid_burn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hybrid_burn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
