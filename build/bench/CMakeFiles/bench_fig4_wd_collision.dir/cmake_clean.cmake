file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_wd_collision.dir/bench_fig4_wd_collision.cpp.o"
  "CMakeFiles/bench_fig4_wd_collision.dir/bench_fig4_wd_collision.cpp.o.d"
  "bench_fig4_wd_collision"
  "bench_fig4_wd_collision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_wd_collision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
