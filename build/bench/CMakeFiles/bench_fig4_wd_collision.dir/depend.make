# Empty dependencies file for bench_fig4_wd_collision.
# This may be replaced when dependencies are built.
