# Empty compiler generated dependencies file for bench_fig3_bubble_weak.
# This may be replaced when dependencies are built.
