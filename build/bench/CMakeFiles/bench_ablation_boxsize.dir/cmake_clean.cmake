file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_boxsize.dir/bench_ablation_boxsize.cpp.o"
  "CMakeFiles/bench_ablation_boxsize.dir/bench_ablation_boxsize.cpp.o.d"
  "bench_ablation_boxsize"
  "bench_ablation_boxsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_boxsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
