# Empty compiler generated dependencies file for bench_ablation_boxsize.
# This may be replaced when dependencies are built.
