# Empty dependencies file for bench_ablation_arena.
# This may be replaced when dependencies are built.
