file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_arena.dir/bench_ablation_arena.cpp.o"
  "CMakeFiles/bench_ablation_arena.dir/bench_ablation_arena.cpp.o.d"
  "bench_ablation_arena"
  "bench_ablation_arena.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_arena.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
