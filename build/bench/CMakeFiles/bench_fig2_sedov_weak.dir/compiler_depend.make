# Empty compiler generated dependencies file for bench_fig2_sedov_weak.
# This may be replaced when dependencies are built.
