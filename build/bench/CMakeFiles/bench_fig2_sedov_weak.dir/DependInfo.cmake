
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig2_sedov_weak.cpp" "bench/CMakeFiles/bench_fig2_sedov_weak.dir/bench_fig2_sedov_weak.cpp.o" "gcc" "bench/CMakeFiles/bench_fig2_sedov_weak.dir/bench_fig2_sedov_weak.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/castro/CMakeFiles/exastro_castro.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/exastro_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/microphysics/CMakeFiles/exastro_micro.dir/DependInfo.cmake"
  "/root/repo/build/src/solvers/CMakeFiles/exastro_solvers.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/exastro_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/exastro_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/exastro_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
