file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_tile_vs_zone.dir/bench_fig1_tile_vs_zone.cpp.o"
  "CMakeFiles/bench_fig1_tile_vs_zone.dir/bench_fig1_tile_vs_zone.cpp.o.d"
  "bench_fig1_tile_vs_zone"
  "bench_fig1_tile_vs_zone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_tile_vs_zone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
