# Empty dependencies file for bench_fig1_tile_vs_zone.
# This may be replaced when dependencies are built.
