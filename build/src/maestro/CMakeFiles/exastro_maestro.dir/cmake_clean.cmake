file(REMOVE_RECURSE
  "CMakeFiles/exastro_maestro.dir/base_state.cpp.o"
  "CMakeFiles/exastro_maestro.dir/base_state.cpp.o.d"
  "CMakeFiles/exastro_maestro.dir/maestro.cpp.o"
  "CMakeFiles/exastro_maestro.dir/maestro.cpp.o.d"
  "libexastro_maestro.a"
  "libexastro_maestro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exastro_maestro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
