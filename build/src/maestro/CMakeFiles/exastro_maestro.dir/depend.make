# Empty dependencies file for exastro_maestro.
# This may be replaced when dependencies are built.
