file(REMOVE_RECURSE
  "libexastro_maestro.a"
)
