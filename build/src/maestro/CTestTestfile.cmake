# CMake generated Testfile for 
# Source directory: /root/repo/src/maestro
# Build directory: /root/repo/build/src/maestro
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
