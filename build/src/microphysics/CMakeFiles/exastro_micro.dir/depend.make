# Empty dependencies file for exastro_micro.
# This may be replaced when dependencies are built.
