file(REMOVE_RECURSE
  "CMakeFiles/exastro_micro.dir/bdf.cpp.o"
  "CMakeFiles/exastro_micro.dir/bdf.cpp.o.d"
  "CMakeFiles/exastro_micro.dir/burner.cpp.o"
  "CMakeFiles/exastro_micro.dir/burner.cpp.o.d"
  "CMakeFiles/exastro_micro.dir/eos.cpp.o"
  "CMakeFiles/exastro_micro.dir/eos.cpp.o.d"
  "CMakeFiles/exastro_micro.dir/linalg.cpp.o"
  "CMakeFiles/exastro_micro.dir/linalg.cpp.o.d"
  "CMakeFiles/exastro_micro.dir/network.cpp.o"
  "CMakeFiles/exastro_micro.dir/network.cpp.o.d"
  "libexastro_micro.a"
  "libexastro_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exastro_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
