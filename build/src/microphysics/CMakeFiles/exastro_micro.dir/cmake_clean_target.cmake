file(REMOVE_RECURSE
  "libexastro_micro.a"
)
