
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/microphysics/bdf.cpp" "src/microphysics/CMakeFiles/exastro_micro.dir/bdf.cpp.o" "gcc" "src/microphysics/CMakeFiles/exastro_micro.dir/bdf.cpp.o.d"
  "/root/repo/src/microphysics/burner.cpp" "src/microphysics/CMakeFiles/exastro_micro.dir/burner.cpp.o" "gcc" "src/microphysics/CMakeFiles/exastro_micro.dir/burner.cpp.o.d"
  "/root/repo/src/microphysics/eos.cpp" "src/microphysics/CMakeFiles/exastro_micro.dir/eos.cpp.o" "gcc" "src/microphysics/CMakeFiles/exastro_micro.dir/eos.cpp.o.d"
  "/root/repo/src/microphysics/linalg.cpp" "src/microphysics/CMakeFiles/exastro_micro.dir/linalg.cpp.o" "gcc" "src/microphysics/CMakeFiles/exastro_micro.dir/linalg.cpp.o.d"
  "/root/repo/src/microphysics/network.cpp" "src/microphysics/CMakeFiles/exastro_micro.dir/network.cpp.o" "gcc" "src/microphysics/CMakeFiles/exastro_micro.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/exastro_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
