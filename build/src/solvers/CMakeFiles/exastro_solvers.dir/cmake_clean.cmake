file(REMOVE_RECURSE
  "CMakeFiles/exastro_solvers.dir/multigrid.cpp.o"
  "CMakeFiles/exastro_solvers.dir/multigrid.cpp.o.d"
  "libexastro_solvers.a"
  "libexastro_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exastro_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
