file(REMOVE_RECURSE
  "libexastro_solvers.a"
)
