# Empty dependencies file for exastro_solvers.
# This may be replaced when dependencies are built.
