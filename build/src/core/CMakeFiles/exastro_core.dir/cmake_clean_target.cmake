file(REMOVE_RECURSE
  "libexastro_core.a"
)
