
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/arena.cpp" "src/core/CMakeFiles/exastro_core.dir/arena.cpp.o" "gcc" "src/core/CMakeFiles/exastro_core.dir/arena.cpp.o.d"
  "/root/repo/src/core/box.cpp" "src/core/CMakeFiles/exastro_core.dir/box.cpp.o" "gcc" "src/core/CMakeFiles/exastro_core.dir/box.cpp.o.d"
  "/root/repo/src/core/executor.cpp" "src/core/CMakeFiles/exastro_core.dir/executor.cpp.o" "gcc" "src/core/CMakeFiles/exastro_core.dir/executor.cpp.o.d"
  "/root/repo/src/core/timer.cpp" "src/core/CMakeFiles/exastro_core.dir/timer.cpp.o" "gcc" "src/core/CMakeFiles/exastro_core.dir/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
