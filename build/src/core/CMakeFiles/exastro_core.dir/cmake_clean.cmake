file(REMOVE_RECURSE
  "CMakeFiles/exastro_core.dir/arena.cpp.o"
  "CMakeFiles/exastro_core.dir/arena.cpp.o.d"
  "CMakeFiles/exastro_core.dir/box.cpp.o"
  "CMakeFiles/exastro_core.dir/box.cpp.o.d"
  "CMakeFiles/exastro_core.dir/executor.cpp.o"
  "CMakeFiles/exastro_core.dir/executor.cpp.o.d"
  "CMakeFiles/exastro_core.dir/timer.cpp.o"
  "CMakeFiles/exastro_core.dir/timer.cpp.o.d"
  "libexastro_core.a"
  "libexastro_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exastro_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
