# Empty compiler generated dependencies file for exastro_core.
# This may be replaced when dependencies are built.
