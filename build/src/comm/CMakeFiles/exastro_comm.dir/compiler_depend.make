# Empty compiler generated dependencies file for exastro_comm.
# This may be replaced when dependencies are built.
