file(REMOVE_RECURSE
  "CMakeFiles/exastro_comm.dir/halo_pattern.cpp.o"
  "CMakeFiles/exastro_comm.dir/halo_pattern.cpp.o.d"
  "CMakeFiles/exastro_comm.dir/ledger.cpp.o"
  "CMakeFiles/exastro_comm.dir/ledger.cpp.o.d"
  "CMakeFiles/exastro_comm.dir/network.cpp.o"
  "CMakeFiles/exastro_comm.dir/network.cpp.o.d"
  "libexastro_comm.a"
  "libexastro_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exastro_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
