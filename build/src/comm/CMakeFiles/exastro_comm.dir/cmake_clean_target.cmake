file(REMOVE_RECURSE
  "libexastro_comm.a"
)
