file(REMOVE_RECURSE
  "libexastro_castro.a"
)
