
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/castro/castro.cpp" "src/castro/CMakeFiles/exastro_castro.dir/castro.cpp.o" "gcc" "src/castro/CMakeFiles/exastro_castro.dir/castro.cpp.o.d"
  "/root/repo/src/castro/castro_amr.cpp" "src/castro/CMakeFiles/exastro_castro.dir/castro_amr.cpp.o" "gcc" "src/castro/CMakeFiles/exastro_castro.dir/castro_amr.cpp.o.d"
  "/root/repo/src/castro/gravity.cpp" "src/castro/CMakeFiles/exastro_castro.dir/gravity.cpp.o" "gcc" "src/castro/CMakeFiles/exastro_castro.dir/gravity.cpp.o.d"
  "/root/repo/src/castro/hydro.cpp" "src/castro/CMakeFiles/exastro_castro.dir/hydro.cpp.o" "gcc" "src/castro/CMakeFiles/exastro_castro.dir/hydro.cpp.o.d"
  "/root/repo/src/castro/react.cpp" "src/castro/CMakeFiles/exastro_castro.dir/react.cpp.o" "gcc" "src/castro/CMakeFiles/exastro_castro.dir/react.cpp.o.d"
  "/root/repo/src/castro/sedov.cpp" "src/castro/CMakeFiles/exastro_castro.dir/sedov.cpp.o" "gcc" "src/castro/CMakeFiles/exastro_castro.dir/sedov.cpp.o.d"
  "/root/repo/src/castro/wd_collision.cpp" "src/castro/CMakeFiles/exastro_castro.dir/wd_collision.cpp.o" "gcc" "src/castro/CMakeFiles/exastro_castro.dir/wd_collision.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mesh/CMakeFiles/exastro_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/microphysics/CMakeFiles/exastro_micro.dir/DependInfo.cmake"
  "/root/repo/build/src/solvers/CMakeFiles/exastro_solvers.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/exastro_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
