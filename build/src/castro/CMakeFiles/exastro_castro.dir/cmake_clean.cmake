file(REMOVE_RECURSE
  "CMakeFiles/exastro_castro.dir/castro.cpp.o"
  "CMakeFiles/exastro_castro.dir/castro.cpp.o.d"
  "CMakeFiles/exastro_castro.dir/castro_amr.cpp.o"
  "CMakeFiles/exastro_castro.dir/castro_amr.cpp.o.d"
  "CMakeFiles/exastro_castro.dir/gravity.cpp.o"
  "CMakeFiles/exastro_castro.dir/gravity.cpp.o.d"
  "CMakeFiles/exastro_castro.dir/hydro.cpp.o"
  "CMakeFiles/exastro_castro.dir/hydro.cpp.o.d"
  "CMakeFiles/exastro_castro.dir/react.cpp.o"
  "CMakeFiles/exastro_castro.dir/react.cpp.o.d"
  "CMakeFiles/exastro_castro.dir/sedov.cpp.o"
  "CMakeFiles/exastro_castro.dir/sedov.cpp.o.d"
  "CMakeFiles/exastro_castro.dir/wd_collision.cpp.o"
  "CMakeFiles/exastro_castro.dir/wd_collision.cpp.o.d"
  "libexastro_castro.a"
  "libexastro_castro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exastro_castro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
