# Empty compiler generated dependencies file for exastro_castro.
# This may be replaced when dependencies are built.
