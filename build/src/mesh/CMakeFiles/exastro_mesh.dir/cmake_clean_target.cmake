file(REMOVE_RECURSE
  "libexastro_mesh.a"
)
