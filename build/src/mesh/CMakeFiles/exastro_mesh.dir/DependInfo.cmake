
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/amr_core.cpp" "src/mesh/CMakeFiles/exastro_mesh.dir/amr_core.cpp.o" "gcc" "src/mesh/CMakeFiles/exastro_mesh.dir/amr_core.cpp.o.d"
  "/root/repo/src/mesh/box_array.cpp" "src/mesh/CMakeFiles/exastro_mesh.dir/box_array.cpp.o" "gcc" "src/mesh/CMakeFiles/exastro_mesh.dir/box_array.cpp.o.d"
  "/root/repo/src/mesh/comm_hooks.cpp" "src/mesh/CMakeFiles/exastro_mesh.dir/comm_hooks.cpp.o" "gcc" "src/mesh/CMakeFiles/exastro_mesh.dir/comm_hooks.cpp.o.d"
  "/root/repo/src/mesh/distribution.cpp" "src/mesh/CMakeFiles/exastro_mesh.dir/distribution.cpp.o" "gcc" "src/mesh/CMakeFiles/exastro_mesh.dir/distribution.cpp.o.d"
  "/root/repo/src/mesh/fab.cpp" "src/mesh/CMakeFiles/exastro_mesh.dir/fab.cpp.o" "gcc" "src/mesh/CMakeFiles/exastro_mesh.dir/fab.cpp.o.d"
  "/root/repo/src/mesh/geometry.cpp" "src/mesh/CMakeFiles/exastro_mesh.dir/geometry.cpp.o" "gcc" "src/mesh/CMakeFiles/exastro_mesh.dir/geometry.cpp.o.d"
  "/root/repo/src/mesh/interp.cpp" "src/mesh/CMakeFiles/exastro_mesh.dir/interp.cpp.o" "gcc" "src/mesh/CMakeFiles/exastro_mesh.dir/interp.cpp.o.d"
  "/root/repo/src/mesh/multifab.cpp" "src/mesh/CMakeFiles/exastro_mesh.dir/multifab.cpp.o" "gcc" "src/mesh/CMakeFiles/exastro_mesh.dir/multifab.cpp.o.d"
  "/root/repo/src/mesh/phys_bc.cpp" "src/mesh/CMakeFiles/exastro_mesh.dir/phys_bc.cpp.o" "gcc" "src/mesh/CMakeFiles/exastro_mesh.dir/phys_bc.cpp.o.d"
  "/root/repo/src/mesh/plotfile.cpp" "src/mesh/CMakeFiles/exastro_mesh.dir/plotfile.cpp.o" "gcc" "src/mesh/CMakeFiles/exastro_mesh.dir/plotfile.cpp.o.d"
  "/root/repo/src/mesh/tagging.cpp" "src/mesh/CMakeFiles/exastro_mesh.dir/tagging.cpp.o" "gcc" "src/mesh/CMakeFiles/exastro_mesh.dir/tagging.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/exastro_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
