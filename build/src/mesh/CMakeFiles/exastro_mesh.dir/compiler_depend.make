# Empty compiler generated dependencies file for exastro_mesh.
# This may be replaced when dependencies are built.
