file(REMOVE_RECURSE
  "CMakeFiles/exastro_mesh.dir/amr_core.cpp.o"
  "CMakeFiles/exastro_mesh.dir/amr_core.cpp.o.d"
  "CMakeFiles/exastro_mesh.dir/box_array.cpp.o"
  "CMakeFiles/exastro_mesh.dir/box_array.cpp.o.d"
  "CMakeFiles/exastro_mesh.dir/comm_hooks.cpp.o"
  "CMakeFiles/exastro_mesh.dir/comm_hooks.cpp.o.d"
  "CMakeFiles/exastro_mesh.dir/distribution.cpp.o"
  "CMakeFiles/exastro_mesh.dir/distribution.cpp.o.d"
  "CMakeFiles/exastro_mesh.dir/fab.cpp.o"
  "CMakeFiles/exastro_mesh.dir/fab.cpp.o.d"
  "CMakeFiles/exastro_mesh.dir/geometry.cpp.o"
  "CMakeFiles/exastro_mesh.dir/geometry.cpp.o.d"
  "CMakeFiles/exastro_mesh.dir/interp.cpp.o"
  "CMakeFiles/exastro_mesh.dir/interp.cpp.o.d"
  "CMakeFiles/exastro_mesh.dir/multifab.cpp.o"
  "CMakeFiles/exastro_mesh.dir/multifab.cpp.o.d"
  "CMakeFiles/exastro_mesh.dir/phys_bc.cpp.o"
  "CMakeFiles/exastro_mesh.dir/phys_bc.cpp.o.d"
  "CMakeFiles/exastro_mesh.dir/plotfile.cpp.o"
  "CMakeFiles/exastro_mesh.dir/plotfile.cpp.o.d"
  "CMakeFiles/exastro_mesh.dir/tagging.cpp.o"
  "CMakeFiles/exastro_mesh.dir/tagging.cpp.o.d"
  "libexastro_mesh.a"
  "libexastro_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exastro_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
