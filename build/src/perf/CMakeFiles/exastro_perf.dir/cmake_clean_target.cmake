file(REMOVE_RECURSE
  "libexastro_perf.a"
)
