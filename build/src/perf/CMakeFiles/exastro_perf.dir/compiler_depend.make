# Empty compiler generated dependencies file for exastro_perf.
# This may be replaced when dependencies are built.
