file(REMOVE_RECURSE
  "CMakeFiles/exastro_perf.dir/device_model.cpp.o"
  "CMakeFiles/exastro_perf.dir/device_model.cpp.o.d"
  "CMakeFiles/exastro_perf.dir/scaling.cpp.o"
  "CMakeFiles/exastro_perf.dir/scaling.cpp.o.d"
  "libexastro_perf.a"
  "libexastro_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exastro_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
